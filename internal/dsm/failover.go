package dsm

// Crash-fault tolerance for the decentralized managers (DESIGN.md §12).
//
// With Config.FaultTolerance every manager role — lock shards, the
// barrier root and tree interior, page homes and the diff directory —
// fails over to the dead node's ring successor in the membership view.
// The successor can take over because each node continuously replicates
// its manager-relevant state there:
//
//   - Interval state rides ReplicaDelta messages shipped after every
//     interval close (barrier phase 1 and lock release): the closed
//     interval's notices with their diff bytes, the node's interval
//     counter and Lamport clock, and the suffix of its causal history
//     (known) accumulated since the previous delta. A sequence number
//     dedups transport-retried deltas.
//   - Lock-manager state rides shadow LockRelease messages: every
//     release is also sent to the effective manager's successor (which
//     mirrors the manager log) and to the releaser's own successor
//     (which records how much of the releaser's replicated history the
//     release covered, so grant forwarding survives a dead holder).
//
// When a call fails with transport.ErrNodeDown, the caller refreshes the
// membership view against the chaos layer's crash state and re-resolves
// the target: page fetches re-route to the page's standby, lock traffic
// to the shard's standby, diff fetches for a dead writer to the writer's
// standby. A barrier run that loses a node mid-phase re-runs its phases
// over the shrunk alive set; the dead node's replicated-but-unflushed
// notices are folded into its successor's enter so no pre-crash write is
// lost.
//
// Recovery: a crashed node rejoins at the start of a barrier episode
// (sim.CrashSchedule.RestartEpoch) or imperatively via Cluster.Restart.
// It wipes its local protocol state, re-learns its interval counter,
// seen vector, and the home table from its successor (RejoinRequest),
// eagerly re-fetches its home pages from the standby while the view
// still routes around it, and only then re-enters the membership view.
//
// Fault model: at most one membership change per barrier epoch (fail-
// stop; no network ambiguity — the chaos layer's crash state is the
// ground truth the view converges to). Nodes that lost state rejoin
// empty-handed; peers holding stale references to a rejoined node's
// pre-crash diffs get nil replies and fall back to full-page fetches.

import (
	"errors"
	"fmt"
	"sort"

	"actdsm/internal/msg"
	"actdsm/internal/sim"
	"actdsm/internal/transport"
	"actdsm/internal/vm"
)

// replMeta is the receiver-side record of one origin node's replicated
// interval state: the interval counter the origin would allocate next,
// its Lamport clock at the last delta, and the last delta sequence
// number applied (the dedup high-water mark).
type replMeta struct {
	interval int32
	lam      int32
	seq      int32
}

// isNodeDown reports whether err is rooted in a crashed-node failure
// (the permanent, non-retryable transport sentinel).
func isNodeDown(err error) bool { return errors.Is(err, transport.ErrNodeDown) }

// isDead reports whether the membership view currently marks node i
// dead. Always false without Config.FaultTolerance, without touching
// the view lock.
func (c *Cluster) isDead(i int) bool {
	if !c.cfg.FaultTolerance {
		return false
	}
	c.viewMu.RLock()
	d := c.dead[i]
	c.viewMu.RUnlock()
	return d
}

// aliveSucc returns the first alive node after i on the ring — the
// node i's manager roles and replicated state fail over to. Returns i
// itself when every other node is dead.
func (c *Cluster) aliveSucc(i int) int {
	c.viewMu.RLock()
	defer c.viewMu.RUnlock()
	return c.aliveSuccLocked(i)
}

func (c *Cluster) aliveSuccLocked(i int) int {
	n := c.cfg.Nodes
	for k := 1; k < n; k++ {
		j := (i + k) % n
		if !c.dead[j] {
			return j
		}
	}
	return i
}

// aliveList returns the sorted ids of the nodes currently alive.
func (c *Cluster) aliveList() []int {
	c.viewMu.RLock()
	defer c.viewMu.RUnlock()
	out := make([]int, 0, c.cfg.Nodes)
	for i := range c.dead {
		if !c.dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// DeadNodes returns the sorted ids of the nodes the membership view
// currently marks dead. Empty without Config.FaultTolerance. The thread
// engine consults it after each barrier to migrate work off crashed
// nodes.
func (c *Cluster) DeadNodes() []int {
	if !c.cfg.FaultTolerance {
		return nil
	}
	c.viewMu.RLock()
	defer c.viewMu.RUnlock()
	var out []int
	for i := range c.dead {
		if c.dead[i] {
			out = append(out, i)
		}
	}
	return out
}

// AliveSuccessor returns the first alive node after i on the ring — the
// failover target for node i's manager roles, replicated state, and
// (for the thread engine) its resident threads. Returns i itself when i
// is alive or every other node is dead; without Config.FaultTolerance
// it is the identity.
func (c *Cluster) AliveSuccessor(i int) int {
	if !c.cfg.FaultTolerance || !c.isDead(i) {
		return i
	}
	return c.aliveSucc(i)
}

// refreshView reconciles the membership view with the chaos layer's
// crash state and returns the number of newly-dead nodes discovered.
// Callers invoke it when a call fails with ErrNodeDown (and at barrier
// entry), then re-resolve their target against the updated view.
func (c *Cluster) refreshView() int {
	if c.chaos == nil {
		return 0
	}
	var crashed []int
	c.viewMu.Lock()
	for i := range c.dead {
		if !c.dead[i] && c.chaos.Down(i) {
			c.dead[i] = true
			c.viewVer++
			crashed = append(crashed, i)
		}
	}
	c.viewMu.Unlock()
	for _, i := range crashed {
		c.stats.Crashes.Add(1)
		c.probeNodeCrashed(i)
	}
	return len(crashed)
}

// effLockManager returns the node currently serving a lock's shard: the
// static manager, or its ring successor when the manager is dead.
func (c *Cluster) effLockManager(lock int32) int {
	m := c.lockManager(lock)
	if c.cfg.FaultTolerance && c.isDead(m) {
		return c.aliveSucc(m)
	}
	return m
}

// effHome returns the node currently serving a page: its home, or the
// home's ring successor (the standby) when the home is dead.
func (n *node) effHome(p vm.PageID) int {
	h := n.home(p)
	if n.c.cfg.FaultTolerance && n.c.isDead(h) {
		return n.c.aliveSucc(h)
	}
	return h
}

// Kill crashes a node imperatively through the chaos layer and updates
// the membership view at once. Test harness entry point; requires
// Config.FaultTolerance (which requires Config.Chaos).
func (c *Cluster) Kill(node int) error {
	if !c.cfg.FaultTolerance || c.chaos == nil {
		return errors.New("dsm: Kill requires Config.FaultTolerance")
	}
	if node < 0 || node >= c.cfg.Nodes {
		return fmt.Errorf("dsm: Kill: no node %d", node)
	}
	c.chaos.Kill(node)
	c.refreshView()
	return nil
}

// Restart runs the recovery protocol for a crashed node immediately
// (the imperative counterpart of sim.CrashSchedule.RestartEpoch). The
// node rejoins with empty protocol state and a freshly fetched copy of
// its home pages.
func (c *Cluster) Restart(node int) error {
	if !c.cfg.FaultTolerance {
		return errors.New("dsm: Restart requires Config.FaultTolerance")
	}
	if node < 0 || node >= c.cfg.Nodes {
		return fmt.Errorf("dsm: Restart: no node %d", node)
	}
	if !c.isDead(node) {
		return nil
	}
	_, err := c.rejoinNode(node)
	return err
}

// replicate ships a node's just-closed interval state to its ring
// successor: the closed notices with their diff bytes, the interval
// counter and Lamport clock, and the suffix of known accumulated since
// the last delta. Called after every closeInterval site — even when the
// close produced no notices, because the known suffix (history received
// under locks) still has to reach the standby before the release that
// covers it. Returns the requester-side wire cost.
func (c *Cluster) replicate(n *node, notices []msg.Notice) (sim.Time, error) {
	succ := c.aliveSucc(n.id)
	if succ == n.id {
		return 0, nil
	}
	build := func(fullKnown bool) *msg.ReplicaDelta {
		n.lockSync()
		n.replSeq++
		start := n.replSent
		if fullKnown {
			start = 0
		}
		d := &msg.ReplicaDelta{
			Origin:   int32(n.id),
			Seq:      n.replSeq,
			Interval: n.interval,
			Lam:      n.lamport.Load(),
			Notices:  notices,
			Known:    append([]msg.Notice(nil), n.known[start:]...),
		}
		n.replSent = len(n.known)
		n.mu.Unlock()
		for _, nt := range notices {
			p := vm.PageID(nt.Page)
			sh := n.rlockShard(p)
			var df []byte
			if ref := sh.diffs[p][nt.Interval]; ref != nil {
				df = append([]byte(nil), ref.b...)
			}
			sh.runlock()
			d.Diffs = append(d.Diffs, df)
		}
		return d
	}
	delta := build(false)
	for attempt := 0; ; attempt++ {
		_, wire, err := c.call(n.id, succ, delta)
		if err == nil {
			c.stats.ReplicaDeltas.Add(1)
			c.stats.ReplicaBytes.Add(int64(msg.Size(delta)))
			return wire, nil
		}
		if isNodeDown(err) && c.refreshView() > 0 && attempt < c.cfg.Nodes {
			// The standby itself died. The new standby has none of this
			// epoch's earlier suffixes, so re-ship the full history.
			succ = c.aliveSucc(n.id)
			if succ == n.id {
				return 0, nil
			}
			c.stats.Failovers.Add(1)
			delta = build(true)
			continue
		}
		return 0, fmt.Errorf("dsm: node %d replicate to %d: %w", n.id, succ, err)
	}
}

// serveReplicaDelta folds a predecessor's interval-state delta into
// this node's replica store. Idempotent: the per-origin sequence number
// drops transport-retried duplicates before any state changes.
func (n *node) serveReplicaDelta(req *msg.ReplicaDelta) (msg.Message, error) {
	origin := int(req.Origin)
	if origin < 0 || origin >= n.c.cfg.Nodes {
		return nil, fmt.Errorf("dsm: replica delta from unknown origin %d", origin)
	}
	n.replMu.Lock()
	defer n.replMu.Unlock()
	st := n.replState[origin]
	if req.Seq <= st.seq {
		return &msg.Ack{}, nil // duplicate delivery (transport retry)
	}
	st.seq = req.Seq
	st.interval = req.Interval
	st.lam = req.Lam
	n.replState[origin] = st
	n.replKnown[origin] = append(n.replKnown[origin], req.Known...)
	for i, nt := range req.Notices {
		if i >= len(req.Diffs) || req.Diffs[i] == nil {
			continue // silent store: the interval produced no diff
		}
		pm := n.replDiffs[origin]
		if pm == nil {
			pm = make(map[vm.PageID]map[int32][]byte)
			n.replDiffs[origin] = pm
		}
		m := pm[vm.PageID(nt.Page)]
		if m == nil {
			m = make(map[int32][]byte)
			pm[vm.PageID(nt.Page)] = m
		}
		m[nt.Interval] = req.Diffs[i]
	}
	return &msg.Ack{}, nil
}

// serveReplicaDiffs answers a DiffRequest addressed to a dead writer:
// this node is the writer's standby and serves the requested intervals
// from its replica store. Nil entries mark diffs the replica never
// received (pre-replication history or a cleared rejoiner) — the
// requester falls back to a full-page fetch, exactly as for a
// garbage-collected diff.
func (n *node) serveReplicaDiffs(req *msg.DiffRequest) (msg.Message, error) {
	out := &msg.DiffReply{Page: req.Page, Diffs: make([][]byte, len(req.Intervals))}
	n.replMu.Lock()
	store := n.replDiffs[int(req.Writer)][vm.PageID(req.Page)]
	for i, iv := range req.Intervals {
		out.Diffs[i] = store[iv]
	}
	n.replMu.Unlock()
	return out, nil
}

// shadowLog returns (creating on first use) the mirror of a dead-able
// primary manager's lock log. Requires lockMgrMu.
func (n *node) shadowLog(primary int) *mgrLog {
	ml := n.shadow[primary]
	if ml == nil {
		ml = newMgrLog()
		n.shadow[primary] = ml
	}
	return ml
}

// serveLockAcquireShadow grants a lock on behalf of a dead shard
// manager, serving from the shadow log the standby accumulated via
// shadow releases. Positions index the dead manager's log, not ours, so
// the grant always serves the full shadow log filtered by the
// requester's seen vector; receiver-side dedup absorbs the overlap.
func (n *node) serveLockAcquireShadow(primary int, req *msg.LockAcquire) (msg.Message, error) {
	n.lockMgrMu.Lock()
	defer n.lockMgrMu.Unlock()
	ml := n.shadowLog(primary)
	if n.c.cfg.HomeMigration {
		holder := int32(-1)
		if h, ok := ml.holder[req.Lock]; ok {
			holder = h
		}
		return &msg.LockGrant{Lock: req.Lock, Lam: ml.lockLam[req.Lock], Holder: holder}, nil
	}
	grant := &msg.LockGrant{Lock: req.Lock, Lam: ml.lockLam[req.Lock], Holder: -1}
	for _, nt := range ml.log {
		if int(nt.Writer) == int(req.Node) {
			continue
		}
		if len(req.Seen) > int(nt.Writer) && nt.Interval <= req.Seen[nt.Writer] {
			continue
		}
		grant.Notices = append(grant.Notices, nt)
	}
	return grant, nil
}

// serveLockReleaseShadow folds a shadow copy of a lock release into the
// standby state. Two independent roles, both recorded (the receiver may
// be playing either or both): mirroring the primary manager's log so
// failover grants can be served, and marking how much of the releaser's
// replicated history existed at this release so a failover LockPull for
// a dead releaser serves exactly the prefix the releaser's own lockMark
// would have (the delta covering the close is always shipped before the
// shadow release, so the mark is exact).
func (n *node) serveLockReleaseShadow(primary int, req *msg.LockRelease) (msg.Message, error) {
	n.lockMgrMu.Lock()
	ml := n.shadowLog(primary)
	ml.add(req.Notices)
	ml.lockLam[req.Lock] = maxI32(ml.lockLam[req.Lock], req.Lam)
	if n.c.cfg.HomeMigration {
		ml.holder[req.Lock] = req.Node
	}
	n.lockMgrMu.Unlock()
	origin := int(req.Node)
	n.replMu.Lock()
	lm := n.replLockMark[origin]
	if lm == nil {
		lm = make(map[int32]int)
		n.replLockMark[origin] = lm
	}
	lm[req.Lock] = len(n.replKnown[origin])
	n.replMu.Unlock()
	return &msg.Ack{}, nil
}

// serveLockPullShadow answers a grant-forwarding history pull for a
// dead holder: this node is the holder's standby and serves the prefix
// of the holder's replicated history marked at its last shadow release —
// the exact mirror of serveLockPull's known[:lockMark] — filtered by
// the requester's seen vector.
func (n *node) serveLockPullShadow(req *msg.LockPull) (msg.Message, error) {
	holder := int(req.Holder)
	n.replMu.Lock()
	kn := n.replKnown[holder]
	mark := n.replLockMark[holder][req.Lock]
	if mark > len(kn) {
		mark = len(kn)
	}
	history := append([]msg.Notice(nil), kn[:mark]...)
	lam := n.replState[holder].lam
	n.replMu.Unlock()
	grant := &msg.LockGrant{Lock: req.Lock, Lam: lam, Holder: req.Holder}
	for _, nt := range history {
		if int(nt.Writer) == int(req.Node) {
			continue
		}
		if len(req.Seen) > int(nt.Writer) && nt.Interval <= req.Seen[nt.Writer] {
			continue
		}
		grant.Notices = append(grant.Notices, nt)
	}
	return grant, nil
}

// shadowRelease ships shadow copies of a lock release to the standby
// targets: the effective manager's successor (log mirror) and the
// releaser's successor (lock-mark recording). Each target gets the
// suffix of the releaser's known set it has not yet been sent, tracked
// by the same per-target sentKnown marks the primary path uses.
func (c *Cluster) shadowRelease(n *node, lock int32, em int) (sim.Time, error) {
	targets := []int{c.aliveSucc(em), c.aliveSucc(n.id)}
	var cost sim.Time
	sent := map[int]bool{em: true}
	for _, t := range targets {
		if sent[t] {
			continue
		}
		sent[t] = true
		n.lockSync()
		var shipped []msg.Notice
		if !c.cfg.HomeMigration {
			shipped = append([]msg.Notice(nil), n.known[n.sentKnown[t]:]...)
			n.sentKnown[t] = len(n.known)
		}
		rel := &msg.LockRelease{
			Node:    int32(n.id),
			Lock:    lock,
			Lam:     n.lamport.Load(),
			Notices: shipped,
		}
		n.mu.Unlock()
		if t == n.id {
			// This node is itself the standby (the manager's ring
			// successor): record into its own shadow state directly.
			if _, err := n.serveLockReleaseShadow(c.lockManager(lock), rel); err != nil {
				return cost, err
			}
			continue
		}
		_, wire, err := c.call(n.id, t, rel)
		if err != nil {
			if isNodeDown(err) && c.refreshView() > 0 {
				// The standby died; the next membership change re-
				// establishes mirrors from the post-barrier reset state.
				continue
			}
			return cost, fmt.Errorf("dsm: node %d shadow release lock %d to %d: %w", n.id, lock, t, err)
		}
		cost += wire
	}
	return cost, nil
}

// resetForRejoin wipes the node's protocol state ahead of re-entering
// the cluster: page copies, twins, pending sets, stored diffs, sync
// histories, manager logs, and replica stores all restart empty. The
// caller re-learns the interval counter and seen vector from the
// successor before the node serves traffic again.
func (n *node) resetForRejoin() {
	for s := range n.shards {
		sh := &n.shards[s]
		sh.mu.Lock()
		for p, store := range sh.diffs {
			for _, d := range store {
				d.release()
			}
			delete(sh.diffs, p)
		}
		for p := s; p < len(n.pages); p += len(n.shards) {
			st := &n.pages[p]
			if st.twin != nil {
				putPageBuf(st.twin)
				st.twin = nil
			}
			st.dirty = false
			st.hasCopy = false
			st.pending = nil
			st.prefetched = false
			st.appliedVT = nil
			n.as.SetProt(vm.PageID(p), vm.ProtNone)
		}
		sh.mu.Unlock()
	}
	n.diffBytes.Store(0)
	n.lamport.Store(0)
	n.lockSync()
	n.interval = 1
	for i := range n.seen {
		n.seen[i] = 0
	}
	n.fresh = nil
	n.known = nil
	n.knownHave = make(map[[3]int32]bool)
	for i := range n.sentKnown {
		n.sentKnown[i] = 0
	}
	for i := range n.lockPos {
		n.lockPos[i] = 0
	}
	n.lockMark = make(map[int32]int)
	n.replSent = 0
	n.replSeq = 0
	if n.faultWin != nil {
		n.faultWin.Reset()
	}
	if n.late != nil {
		n.late = make(map[vm.PageID]bool)
	}
	n.pushedEpoch = 0
	n.pushCost = 0
	n.mu.Unlock()
	n.lockMgrMu.Lock()
	n.locks.reset()
	n.shadow = make(map[int]*mgrLog)
	n.lockMgrMu.Unlock()
	n.replMu.Lock()
	n.replKnown = make(map[int][]msg.Notice)
	n.replLockMark = make(map[int]map[int32]int)
	n.replDiffs = make(map[int]map[vm.PageID]map[int32][]byte)
	n.replState = make(map[int]replMeta)
	n.replMu.Unlock()
}

// serveRejoinRequest hands a rejoining predecessor the state it needs
// to resume: its replicated interval counter and Lamport clock, this
// node's seen vector (a safe, fully-flushed view for a node with no
// history), and the current home table. The rejoiner's replica store
// here restarts empty — its pre-crash diffs are unreachable anyway once
// the node itself has wiped them — and the delta sequence resets so the
// rejoiner's fresh numbering is accepted. Idempotent for transport
// retries: the interval record is read, not consumed.
func (n *node) serveRejoinRequest(req *msg.RejoinRequest) (msg.Message, error) {
	d := int(req.Node)
	if d < 0 || d >= n.c.cfg.Nodes {
		return nil, fmt.Errorf("dsm: rejoin request from unknown node %d", d)
	}
	n.replMu.Lock()
	st := n.replState[d]
	st.seq = 0
	n.replState[d] = st
	delete(n.replKnown, d)
	delete(n.replDiffs, d)
	delete(n.replLockMark, d)
	n.replMu.Unlock()
	iv := st.interval
	if iv < 1 {
		iv = 1
	}
	n.lockSync()
	seen := append([]int32(nil), n.seen...)
	n.mu.Unlock()
	homes := make([]int32, len(n.homes))
	for p := range n.homes {
		homes[p] = n.homes[p].Load()
	}
	return &msg.RejoinReply{Interval: iv, Lam: st.lam, Seen: seen, Homes: homes}, nil
}

// rejoinNode runs the recovery protocol for a crashed node: revive its
// transport, wipe its local state, re-learn interval/seen/homes from
// the ring successor, eagerly re-fetch the node's home pages from the
// standby (the membership view still routes around the node, so the
// fetches resolve to the standby), and finally mark the node alive.
func (c *Cluster) rejoinNode(d int) (sim.Time, error) {
	if c.chaos != nil {
		c.chaos.Revive(d)
	}
	n := c.nodes[d]
	n.resetForRejoin()
	succ := c.aliveSucc(d)
	var cost sim.Time
	if succ != d {
		reply, wire, err := c.call(d, succ, &msg.RejoinRequest{Node: int32(d)})
		if err != nil {
			return 0, fmt.Errorf("dsm: node %d rejoin: %w", d, err)
		}
		rr, ok := reply.(*msg.RejoinReply)
		if !ok {
			return 0, fmt.Errorf("dsm: node %d rejoin: unexpected reply %T", d, reply)
		}
		cost += wire
		n.bumpLamport(rr.Lam)
		n.lockSync()
		n.interval = maxI32(rr.Interval, 1)
		copy(n.seen, rr.Seen)
		n.mu.Unlock()
		for p, h := range rr.Homes {
			if p < len(n.homes) {
				n.homes[p].Store(h)
			}
		}
		// Eager home re-fetch: effHome resolves to the standby while the
		// view still marks this node dead.
		var ti sim.ThreadInterval
		n.setCharge(&ti, -1)
		for p := range n.pages {
			if n.home(vm.PageID(p)) == d {
				if err := n.fetchFullPage(-1, vm.PageID(p), ApplyServer); err != nil {
					n.setCharge(nil, 0)
					return 0, fmt.Errorf("dsm: node %d rejoin refetch page %d: %w", d, p, err)
				}
			}
		}
		n.setCharge(nil, 0)
		cost += ti.Stall + ti.Overhead
	}
	c.viewMu.Lock()
	if c.dead[d] {
		c.dead[d] = false
		c.viewVer++
	}
	c.viewMu.Unlock()
	c.stats.Rejoins.Add(1)
	c.probeNodeRejoined(d)
	return cost, nil
}

// contributeDead folds each dead node's replicated, not-yet-flushed
// causal history into its successor's barrier enter, so the episode's
// union still carries every pre-crash write notice (the successor also
// holds the matching diffs in its replica store).
func (c *Cluster) contributeDead(enters []*msg.BarrierEnter) {
	for d := range c.nodes {
		if !c.isDead(d) {
			continue
		}
		s := c.aliveSucc(d)
		if s == d || enters[s] == nil {
			continue
		}
		sn := c.nodes[s]
		sn.replMu.Lock()
		kn := append([]msg.Notice(nil), sn.replKnown[d]...)
		lam := sn.replState[d].lam
		sn.replMu.Unlock()
		enters[s].Notices = append(enters[s].Notices, kn...)
		enters[s].Lam = maxI32(enters[s].Lam, lam)
	}
}

// barrierFT is Barrier under Config.FaultTolerance: the episode runs
// over the alive set (root = lowest alive id, tree positions = indices
// into the alive list), scheduled restarts rejoin at the episode start,
// and a node death mid-phase shrinks the view and re-runs the phases.
// Phase re-runs are safe for the same reason phase retries are: every
// receiver folds idempotently, and fresh/known clear only after the
// whole episode succeeds.
func (c *Cluster) barrierFT() ([]sim.Time, error) {
	nnodes := c.cfg.Nodes
	costs := make([]sim.Time, nnodes)
	episode := c.episode
	c.episode++

	// Scheduled restarts arm at the start of their episode.
	if c.cfg.Chaos != nil {
		for _, s := range c.cfg.Chaos.Crashes {
			if s.RestartsAt(int64(episode)) && c.isDead(s.Node) {
				w, err := c.rejoinNode(s.Node)
				if err != nil {
					return nil, err
				}
				costs[s.Node] += w
			}
		}
	}
	if c.refreshView() > 0 {
		c.stats.RecoveryRounds.Add(1)
	}

	for attempt := 0; ; attempt++ {
		ver := c.viewVersion()
		err := c.barrierFTAttempt(episode, costs)
		if err == nil {
			break
		}
		// Retry when the view shrank — whether this check discovers the
		// death or an inner retry (replicate's standby re-ship, a serve
		// loop) already recorded it and then failed for the same crash.
		// Gating on refreshView alone would let that inner discovery
		// consume the retry budget's trigger.
		if isNodeDown(err) && attempt < nnodes &&
			(c.refreshView() > 0 || c.viewVersion() != ver) {
			// A node died mid-phase: re-run the episode's phases over
			// the shrunk alive set (no BarrierRetries charge — this is
			// membership change, not a transient fault).
			c.stats.RecoveryRounds.Add(1)
			continue
		}
		return nil, err
	}

	// The episode succeeded: commit exactly the final attempt's notice
	// union to the write history and consume the queued home moves.
	c.histMu.Lock()
	notices := c.ftNotices
	qMoved, qSkipped := c.ftHomeMoved, c.ftHomeSkipped
	c.ftNotices, c.ftHomeMoved, c.ftHomeSkipped = nil, 0, 0
	c.histMu.Unlock()
	c.recordWriteHistory(notices)
	c.commitQueuedHomes(qMoved, qSkipped)

	alive := c.aliveList()
	for _, i := range alive {
		costs[i] += c.costs.BarrierBase
	}
	// The episode is fully delivered: pending flush state, causal
	// histories, and the per-epoch replication marks restart together.
	for _, i := range alive {
		n := c.nodes[i]
		n.lockSync()
		n.fresh = nil
		n.known = nil
		n.knownHave = make(map[[3]int32]bool)
		for j := range n.sentKnown {
			n.sentKnown[j] = 0
		}
		for j := range n.lockPos {
			n.lockPos[j] = 0
		}
		n.lockMark = make(map[int32]int)
		n.replSent = 0
		n.mu.Unlock()
		n.lockMgrMu.Lock()
		n.shadow = make(map[int]*mgrLog)
		n.lockMgrMu.Unlock()
		n.replMu.Lock()
		n.replKnown = make(map[int][]msg.Notice)
		n.replLockMark = make(map[int]map[int32]int)
		n.replMu.Unlock()
	}
	c.stats.Barriers.Add(1)

	if c.cfg.GCThresholdBytes >= 0 {
		var total int64
		for _, i := range alive {
			total += c.nodes[i].diffBytes.Load()
		}
		if total > int64(c.cfg.GCThresholdBytes) {
			for attempt := 0; ; attempt++ {
				ver := c.viewVersion()
				err := c.collectGarbageFT(costs)
				if err == nil {
					break
				}
				if isNodeDown(err) && attempt < nnodes &&
					(c.refreshView() > 0 || c.viewVersion() != ver) {
					// A node died mid-collection: re-run over the shrunk
					// view. Re-running is idempotent — consolidation
					// re-fetches only still-pending diffs and collect
					// re-drops already-empty stores.
					c.stats.RecoveryRounds.Add(1)
					continue
				}
				return nil, err
			}
		}
	}
	// A crash whose scheduled call fell inside this episode may never
	// fail a protocol call — the victim can die after its last
	// participation (its enter already folded, no release or GC call
	// addressed it). Reconcile with the chaos layer before threads
	// resume, so the engine migrates the victim's threads at THIS
	// barrier and routing sees the death before the first post-barrier
	// fault, not when a call from the dead node is refused mid-interval.
	c.refreshView()
	return costs, nil
}

// viewVersion returns the membership view's change counter; retry loops
// compare it across an attempt to detect deaths an inner recovery path
// already folded into the view.
func (c *Cluster) viewVersion() int64 {
	c.viewMu.RLock()
	defer c.viewMu.RUnlock()
	return c.viewVer
}

// barrierFTAttempt runs one attempt of the FT barrier's phases over the
// current alive set.
func (c *Cluster) barrierFTAttempt(episode int32, costs []sim.Time) error {
	nnodes := c.cfg.Nodes
	alive := c.aliveList()
	na := len(alive)
	if na == 0 {
		return errors.New("dsm: barrier with no alive nodes")
	}
	mgr := alive[0]
	tree := c.cfg.BarrierArity >= 2 && na > 1

	c.barrierMu.Lock()
	for i := range c.barriers {
		c.barriers[i] = barrierState{
			episode: episode,
			entered: make(map[int32]bool, na),
			have:    make(map[[3]int32]bool),
			hot:     make(map[int32][]int32, na),
		}
	}
	c.barrierMu.Unlock()

	// Phase 1 (local, serial, alive only): close every interval,
	// replicate the closed state to the ring successor, build enters.
	enters := make([]*msg.BarrierEnter, nnodes)
	for _, i := range alive {
		n := c.nodes[i]
		notices, diffCost := n.closeInterval()
		costs[i] += diffCost
		w, err := c.replicate(n, notices)
		if err != nil {
			return err
		}
		costs[i] += w
		n.lockSync()
		enters[i] = &msg.BarrierEnter{
			Node:    int32(i),
			Episode: episode,
			Lam:     n.lamport.Load(),
			Notices: append([]msg.Notice(nil), n.fresh...),
		}
		n.mu.Unlock()
	}
	c.contributeDead(enters)

	// Phase 2: enter fan-in over the alive set.
	var err error
	if tree {
		err = c.broadcast(func() error { return c.treeEnterPhaseFT(episode, alive, enters, costs) })
	} else {
		err = c.broadcast(func() error {
			return fanOut(na, c.cfg.SerialFanOut, func(j int) error {
				i := alive[j]
				if i == mgr {
					_, err := c.nodes[mgr].serveBarrierEnter(enters[mgr])
					return err
				}
				_, wire, err := c.call(i, mgr, enters[i])
				if err != nil {
					return fmt.Errorf("dsm: barrier enter node %d: %w", i, err)
				}
				costs[i] += wire
				return nil
			})
		})
	}
	if err != nil {
		return err
	}

	c.barrierMu.Lock()
	entered := c.barriers[mgr].entered
	for _, i := range alive {
		if !entered[int32(i)] {
			got := len(entered)
			c.barrierMu.Unlock()
			return fmt.Errorf("dsm: barrier episode %d: %d entered, alive node %d missing", episode, got, i)
		}
	}
	notices := append([]msg.Notice(nil), c.barriers[mgr].notices...)
	lam := c.barriers[mgr].lam
	c.barrierMu.Unlock()
	sort.Slice(notices, func(i, j int) bool {
		a, b := notices[i], notices[j]
		if a.Writer != b.Writer {
			return a.Writer < b.Writer
		}
		if a.Interval != b.Interval {
			return a.Interval < b.Interval
		}
		return a.Page < b.Page
	})
	var homes []msg.PageHome
	if c.cfg.HomeMigration {
		homes = c.migrationDecisionsAll(c.nodes[mgr], notices, true)
	}
	homes, qMoved, qSkipped := c.queuedHomeDecisions(c.nodes[mgr], homes)
	// Stash this attempt's notice union and queued-home accounting: the
	// successful attempt's values are committed once by barrierFT (a
	// crashed attempt recomputes and overwrites them).
	c.histMu.Lock()
	c.ftNotices = notices
	c.ftHomeMoved, c.ftHomeSkipped = qMoved, qSkipped
	c.histMu.Unlock()

	// Phase 3: release fan-out over the alive set.
	if tree {
		err = c.broadcast(func() error {
			return c.treeReleasePhaseFT(episode, lam, alive, notices, homes, costs)
		})
	} else {
		err = c.broadcast(func() error {
			return fanOut(na, c.cfg.SerialFanOut, func(j int) error {
				i := alive[j]
				rel := &msg.BarrierRelease{Episode: episode, Lam: lam, Notices: notices, Homes: homes}
				if i == mgr {
					_, err := c.nodes[i].serveBarrierRelease(rel)
					return err
				}
				_, wire, err := c.call(mgr, i, rel)
				if err != nil {
					return fmt.Errorf("dsm: barrier release node %d: %w", i, err)
				}
				costs[i] += wire
				return nil
			})
		})
	}
	if err != nil {
		return err
	}

	// Standby upkeep for migrated homes: the new home's ring successor
	// must hold a copy (the invariant failover full-fetches rely on); a
	// successor without one fetches it now, while threads are parked.
	for _, ph := range homes {
		h := int(ph.Home)
		s := c.aliveSucc(h)
		if s == h {
			continue
		}
		sn := c.nodes[s]
		p := vm.PageID(ph.Page)
		sh := sn.rlockShard(p)
		has := sn.pages[p].hasCopy
		sh.runlock()
		if has {
			continue
		}
		var ti sim.ThreadInterval
		sn.setCharge(&ti, -1)
		if err := sn.fetchFullPage(-1, p, ApplyServer); err != nil {
			sn.setCharge(nil, 0)
			return fmt.Errorf("dsm: standby fetch page %d: %w", p, err)
		}
		sn.setCharge(nil, 0)
		costs[s] += ti.Stall + ti.Overhead
	}
	return nil
}

// treeEnterPhaseFT is treeEnterPhase over the alive list: tree
// positions are indices into the alive slice (root = position 0), so
// the topology stays a complete k-ary tree however membership shrinks.
func (c *Cluster) treeEnterPhaseFT(episode int32, alive []int, enters []*msg.BarrierEnter, costs []sim.Time) error {
	k := c.cfg.BarrierArity
	for _, i := range alive {
		if _, err := c.nodes[i].serveBarrierEnter(enters[i]); err != nil {
			return err
		}
	}
	levels := treeLevels(len(alive), k)
	var firstErr error
	for li := len(levels) - 1; li >= 0; li-- {
		lvl := levels[li]
		err := fanOut(len(lvl), c.cfg.SerialFanOut, func(j int) error {
			child := alive[lvl[j]]
			parent := alive[treeParent(lvl[j], k)]
			agg := c.buildEnterAggregate(child, episode)
			_, wire, err := c.call(child, parent, agg)
			if err != nil {
				return fmt.Errorf("dsm: barrier enter relay node %d: %w", child, err)
			}
			costs[child] += wire
			return nil
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// treeReleasePhaseFT is treeReleasePhase over the alive list. The FT
// barrier never carries pushed diffs (prefetch is excluded with fault
// tolerance), so relays reduce to the episode payload.
func (c *Cluster) treeReleasePhaseFT(episode, lam int32, alive []int, notices []msg.Notice, homes []msg.PageHome, costs []sim.Time) error {
	k := c.cfg.BarrierArity
	rel0 := &msg.BarrierRelease{Episode: episode, Lam: lam, Notices: notices, Homes: homes}
	if _, err := c.nodes[alive[0]].serveBarrierRelease(rel0); err != nil {
		return err
	}
	var firstErr error
	for _, lvl := range treeLevels(len(alive), k) {
		err := fanOut(len(lvl), c.cfg.SerialFanOut, func(j int) error {
			child := alive[lvl[j]]
			parent := alive[treeParent(lvl[j], k)]
			rel, err := c.buildChildReleaseFT(parent, episode)
			if err != nil {
				return err
			}
			_, wire, err := c.call(parent, child, rel)
			if err != nil {
				return fmt.Errorf("dsm: barrier release relay node %d: %w", child, err)
			}
			costs[child] += wire
			return nil
		})
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// buildChildReleaseFT assembles the release a parent relays down the FT
// tree from its stored copy of the episode payload.
func (c *Cluster) buildChildReleaseFT(parent int, episode int32) (*msg.BarrierRelease, error) {
	c.barrierMu.Lock()
	defer c.barrierMu.Unlock()
	src := c.barriers[parent].rel
	if src == nil || src.Episode != episode {
		return nil, fmt.Errorf("dsm: barrier release relay: node %d holds no release for episode %d", parent, episode)
	}
	return &msg.BarrierRelease{Episode: episode, Lam: src.Lam, Notices: src.Notices, Homes: src.Homes}, nil
}

// collectGarbageFT is collectGarbage over the alive view: pages
// consolidate at their effective home, the home's standby refreshes its
// full copy before the drop broadcast (so the two-copy invariant
// survives the collection), and the collect spares the standby's page
// copy while still dropping every stored and replicated diff.
func (c *Cluster) collectGarbageFT(costs []sim.Time) error {
	c.stats.GCRounds.Add(1)
	alive := c.aliveList()
	pageSet := make(map[vm.PageID]bool)
	for _, i := range alive {
		n := c.nodes[i]
		for s := range n.shards {
			sh := &n.shards[s]
			sh.mu.RLock()
			for p := range sh.diffs {
				pageSet[p] = true
			}
			sh.mu.RUnlock()
		}
		n.replMu.Lock()
		for _, pm := range n.replDiffs {
			for p := range pm {
				pageSet[p] = true
			}
		}
		n.replMu.Unlock()
	}
	pages := make([]vm.PageID, 0, len(pageSet))
	for p := range pageSet {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	for _, p := range pages {
		ref := c.nodes[alive[0]]
		hm := ref.effHome(p)
		mgr := c.nodes[hm]
		sh := mgr.rlockShard(p)
		pending := append([]msg.Notice(nil), mgr.pages[p].pending...)
		sh.runlock()
		var ti sim.ThreadInterval
		mgr.setCharge(&ti, -1)
		if len(pending) > 0 {
			ok, err := mgr.fetchAndApplyDiffs(-1, p, pending, ApplyServer)
			if err != nil {
				mgr.setCharge(nil, 0)
				return fmt.Errorf("dsm: gc consolidate page %d: %w", p, err)
			}
			if !ok {
				mgr.setCharge(nil, 0)
				return fmt.Errorf("dsm: gc consolidate page %d: diffs already gone", p)
			}
			sh = mgr.lockShard(p)
			mgr.as.SetProt(p, vm.ProtRead)
			sh.mu.Unlock()
		}
		mgr.setCharge(nil, 0)
		costs[mgr.id] += ti.Stall + ti.Overhead

		// Refresh the standby's full copy before diffs drop, so a later
		// failover still finds a current image.
		if s := c.aliveSucc(hm); s != hm {
			sn := c.nodes[s]
			var sti sim.ThreadInterval
			sn.setCharge(&sti, -1)
			if err := sn.fetchFullPage(-1, p, ApplyServer); err != nil {
				sn.setCharge(nil, 0)
				return fmt.Errorf("dsm: gc standby refresh page %d: %w", p, err)
			}
			sn.setCharge(nil, 0)
			costs[s] += sti.Stall + sti.Overhead
		}

		collect := &msg.GCCollect{Page: int32(p)}
		err := c.broadcast(func() error {
			return fanOut(len(alive), c.cfg.SerialFanOut, func(j int) error {
				i := alive[j]
				if i == mgr.id {
					_, err := c.nodes[i].serveGCCollect(collect)
					return err
				}
				_, wire, err := c.call(mgr.id, i, collect)
				if err != nil {
					return fmt.Errorf("dsm: gc collect page %d node %d: %w", p, i, err)
				}
				costs[i] += wire
				return nil
			})
		})
		if err != nil {
			return err
		}
		c.stats.GCCollections.Add(1)
	}
	return nil
}
