package dsm

import (
	"sync"
	"testing"
	"time"

	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/sim"
	"actdsm/internal/transport"
	"actdsm/internal/vm"
)

// ftConfig is the shared base configuration for the failover acceptance
// tests: fault tolerance with deterministic call numbering (SerialFanOut)
// so crash-at-call schedules replay exactly.
func ftConfig(nodes, npages int, chaos *transport.ChaosOptions) Config {
	if chaos == nil {
		chaos = &transport.ChaosOptions{}
	}
	return Config{
		Nodes:            nodes,
		Pages:            npages,
		FaultTolerance:   true,
		SerialFanOut:     true,
		GCThresholdBytes: -1,
		Transport: transport.Options{
			MaxAttempts: 4,
			BackoffBase: time.Microsecond,
		},
		Chaos: chaos,
	}
}

// ftWorkload drives the two-phase crash workload: every node writes its
// disjoint lanes for preRounds barrier rounds, then kill (if non-nil)
// crashes a node, then the survivors write their lanes for postRounds
// more rounds. The same write sequence runs in the fault-free reference
// (survivors-only in phase two there as well), so the final contents of
// the two runs must be byte-identical. Returns the shadow array.
func ftWorkload(t *testing.T, c *Cluster, nodes, npages, preRounds, postRounds int,
	survivors []int, kill func()) []float32 {
	t.Helper()
	words := npages * memlayout.PageSize / 4
	shadow := make([]float32, words)
	write := func(node, round int) {
		for k := 0; k < 6; k++ {
			w := (node*19 + k*31 + round*57) % words
			w -= w % nodes // disjoint per-node lanes within a round
			w += node
			if w >= words {
				continue
			}
			val := float32(round*1000 + node*100 + k)
			wf32(t, c, node, node, w, val)
			shadow[w] = val
		}
	}
	for round := 0; round < preRounds; round++ {
		for node := 0; node < nodes; node++ {
			write(node, round)
		}
		barrier(t, c)
	}
	if kill != nil {
		kill()
	}
	for round := preRounds; round < preRounds+postRounds; round++ {
		for _, node := range survivors {
			write(node, round)
		}
		barrier(t, c)
	}
	return shadow
}

// ftVerify reads every word from reader and compares against shadow.
func ftVerify(t *testing.T, c *Cluster, reader int, shadow []float32) {
	t.Helper()
	for w := range shadow {
		if got := rf32(t, c, reader, reader, w); got != shadow[w] {
			t.Fatalf("node %d word %d = %v, want %v", reader, w, got, shadow[w])
		}
	}
	if err := c.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// survivorsOf returns 0..nodes-1 minus the victim.
func survivorsOf(nodes, victim int) []int {
	out := make([]int, 0, nodes-1)
	for i := 0; i < nodes; i++ {
		if i != victim {
			out = append(out, i)
		}
	}
	return out
}

// TestFailoverLockShardManager crashes a lock-shard manager mid-protocol
// and proves the role fails over: the sharpest possible scenario is a
// reader holding a still-valid cached copy whose only way to learn of an
// update is the write notice carried by its lock grant. The manager dies
// after serving the writer's release, so the grant must come from the
// shadow log its ring successor accumulated via shadow releases. The
// final contents must match a fault-free run of the same sequence, and
// the failover counters pin the recovery path that served it.
func TestFailoverLockShardManager(t *testing.T) {
	const nodes, npages = 4, 2
	const victim = 2
	const lock = int32(victim) // lockManager(lock) == victim
	run := func(crash bool) (float32, Snapshot) {
		c, err := New(ftConfig(nodes, npages, nil))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()

		// Node 3 caches word 0 while it is still zero; the copy stays
		// valid until a write notice arrives.
		if got := rf32(t, c, 3, 3, 0); got != 0 {
			t.Fatalf("initial read = %v, want 0", got)
		}
		// Node 0 updates word 0 under the victim-managed lock. The
		// release ships the notice to the victim AND a shadow copy to
		// the victim's ring successor.
		if _, err := c.AcquireLock(0, 0, lock); err != nil {
			t.Fatal(err)
		}
		wf32(t, c, 0, 0, 0, 42)
		if _, err := c.ReleaseLock(0, 0, lock); err != nil {
			t.Fatal(err)
		}
		if crash {
			if err := c.Kill(victim); err != nil {
				t.Fatal(err)
			}
		}
		// Node 3 takes the lock: with the manager dead this acquire is
		// served by the successor from the shadow log, and must still
		// carry node 0's notice.
		if _, err := c.AcquireLock(3, 3, lock); err != nil {
			t.Fatal(err)
		}
		got := rf32(t, c, 3, 3, 0)
		if _, err := c.ReleaseLock(3, 3, lock); err != nil {
			t.Fatal(err)
		}
		barrier(t, c)
		if err := c.CheckCoherence(); err != nil {
			t.Fatal(err)
		}
		return got, c.Stats().Snapshot()
	}

	clean, cleanSnap := run(false)
	crashed, snap := run(true)
	if clean != 42 || crashed != 42 {
		t.Fatalf("post-failover read = %v (clean %v), want 42 — "+
			"the shadow lock log lost the grant notices", crashed, clean)
	}
	if snap.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", snap.Crashes)
	}
	if snap.Failovers == 0 {
		t.Fatal("no failovers recorded; the acquire never re-routed")
	}
	// Exactly-once content creation: crash or not, the same writes
	// closed the same intervals.
	if snap.DiffsCreated != cleanSnap.DiffsCreated || snap.TwinsCreated != cleanSnap.TwinsCreated {
		t.Fatalf("diff/twin creation diverged: crash %d/%d, clean %d/%d",
			snap.DiffsCreated, snap.TwinsCreated, cleanSnap.DiffsCreated, cleanSnap.TwinsCreated)
	}
}

// TestFailoverBarrierTreeInterior crashes an interior node of the k-ary
// barrier tree at the exact transport call where it would relay its
// enter aggregate, pinned by a recorded calibration run. The episode
// must re-run over the shrunk alive set with the victim's replicated
// notices folded in by its ring successor, and the surviving nodes'
// final contents must be byte-identical to a fault-free reference.
func TestFailoverBarrierTreeInterior(t *testing.T) {
	const nodes, npages = 7, 3
	const victim = 1 // tree position 1: interior, parent of leaves
	base := func(chaos *transport.ChaosOptions) Config {
		cfg := ftConfig(nodes, npages, chaos)
		cfg.BarrierArity = 2
		return cfg
	}

	// Calibration: record the clean run's call trace to find the victim's
	// barrier-enter relay in the second barrier episode.
	log := &transport.CallLog{}
	{
		c, err := New(base(&transport.ChaosOptions{Plan: transport.RecordingPlan(nil, log)}))
		if err != nil {
			t.Fatal(err)
		}
		ftWorkload(t, c, nodes, npages, 2, 2, survivorsOf(nodes, victim), nil)
		_ = c.Close()
	}
	var crashCall int64
	enters := 0
	for _, r := range log.Records() {
		if r.Kind == byte(msg.KindBarrierEnter) && r.From == victim {
			enters++
			if enters == 2 { // the victim's relay in the second episode
				crashCall = r.Call
				break
			}
		}
	}
	if crashCall == 0 {
		t.Fatal("calibration never saw the victim relay a barrier enter")
	}

	run := func(chaos *transport.ChaosOptions) ([]float32, Snapshot, *Cluster) {
		c, err := New(base(chaos))
		if err != nil {
			t.Fatal(err)
		}
		var kill func()
		if chaos == nil || len(chaos.Crashes) == 0 {
			kill = nil
		}
		_ = kill
		shadow := ftWorkload(t, c, nodes, npages, 2, 2, survivorsOf(nodes, victim), nil)
		return shadow, c.Stats().Snapshot(), c
	}

	cleanC, err := New(base(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cleanC.Close() }()
	cleanShadow := ftWorkload(t, cleanC, nodes, npages, 2, 2, survivorsOf(nodes, victim), nil)

	shadow, snap, c := run(&transport.ChaosOptions{
		Crashes: []sim.CrashSchedule{{Node: victim, Call: crashCall}},
	})
	defer func() { _ = c.Close() }()

	if snap.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1 (crash call %d)", snap.Crashes, crashCall)
	}
	if snap.RecoveryRounds == 0 {
		t.Fatal("no barrier recovery round recorded; the crash missed the phase")
	}
	// The victim died mid-barrier, after closing and replicating its
	// phase-one state: every one of its pre-crash writes must survive.
	// Both shadows were built from the same write sequence (the victim's
	// post-crash rounds are survivor-only in both runs), so surviving
	// nodes must read byte-identical content.
	for w := range shadow {
		if shadow[w] != cleanShadow[w] {
			t.Fatalf("workloads diverged at word %d", w)
		}
	}
	ftVerify(t, c, 0, shadow)
	for _, reader := range []int{2, 6} {
		for w := 0; w < len(shadow); w += 7 {
			if got := rf32(t, c, reader, reader, w); got != shadow[w] {
				t.Fatalf("survivor %d word %d = %v, want %v", reader, w, got, shadow[w])
			}
		}
	}
	ftVerify(t, cleanC, 0, cleanShadow)
}

// TestFailoverHomeDirectory crashes the home of a migrated page: with
// HomeMigration the page's last writer became its home, so killing that
// node takes down both the page image and the diff directory entry. The
// ring standby (refreshed by the migrated-home upkeep at the barrier)
// must serve the page, and a reader must still see the dead home's
// writes.
func TestFailoverHomeDirectory(t *testing.T) {
	const nodes, npages = 4, 3
	const victim = 1
	cfg := ftConfig(nodes, npages, nil)
	cfg.HomeMigration = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	words := npages * memlayout.PageSize / 4
	wordsPerPage := memlayout.PageSize / 4
	// The victim becomes the sole writer — and so the migrated home — of
	// every page.
	for p := 0; p < npages; p++ {
		wf32(t, c, victim, victim, p*wordsPerPage, float32(100+p))
	}
	barrier(t, c)
	for p := 0; p < npages; p++ {
		if got := c.nodes[0].home(vm.PageID(p)); got != victim {
			t.Fatalf("page %d home = %d, want migrated to %d", p, got, victim)
		}
	}

	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// Every fetch must fail over to the standby's refreshed copy.
	for p := 0; p < npages; p++ {
		if got := rf32(t, c, 3, 3, p*wordsPerPage); got != float32(100+p) {
			t.Fatalf("page %d word 0 = %v after home crash, want %v", p, got, float32(100+p))
		}
	}
	snap := c.Stats().Snapshot()
	if snap.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", snap.Crashes)
	}
	if snap.Failovers == 0 {
		t.Fatal("no failovers recorded; reads never re-routed to the standby")
	}
	barrier(t, c)
	if err := c.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	_ = words
}

// TestFailoverCrashRestart runs the full crash/recovery cycle through a
// scheduled restart: the victim crashes mid-workload via a crash-at-call
// schedule, rejoins at a named barrier episode with wiped state, and
// then writes again; the final contents seen by every node must match
// the shadow, and the rejoin counters pin the recovery protocol.
func TestFailoverCrashRestart(t *testing.T) {
	// npages > victim so the victim statically homes page 2 and the
	// rejoin protocol has something to eagerly re-fetch.
	const nodes, npages = 4, 4
	const victim = 2
	words := npages * memlayout.PageSize / 4

	// Calibration: find the call number of the victim's first barrier
	// enter (episode 0), so the crash lands between its phase-one
	// replication and the fan-in. The victim therefore writes only in
	// round 0; later rounds are survivor-only in BOTH runs so the final
	// contents stay identical.
	log := &transport.CallLog{}
	{
		c, err := New(ftConfig(nodes, npages, &transport.ChaosOptions{
			Plan: transport.RecordingPlan(nil, log),
		}))
		if err != nil {
			t.Fatal(err)
		}
		ftWorkload(t, c, nodes, npages, 1, 2, survivorsOf(nodes, victim), nil)
		_ = c.Close()
	}
	var crashCall int64
	for _, r := range log.Records() {
		if r.Kind == byte(msg.KindBarrierEnter) && r.From == victim {
			crashCall = r.Call // first barrier enter from the victim
			break
		}
	}
	if crashCall == 0 {
		t.Fatal("calibration never saw the victim enter a barrier")
	}

	c, err := New(ftConfig(nodes, npages, &transport.ChaosOptions{
		Crashes: []sim.CrashSchedule{{Node: victim, Call: crashCall, RestartEpoch: 2}},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	shadow := ftWorkload(t, c, nodes, npages, 1, 2, survivorsOf(nodes, victim), nil)
	snap := c.Stats().Snapshot()
	if snap.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1 (crash call %d)", snap.Crashes, crashCall)
	}
	if snap.Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1 — the scheduled restart never ran", snap.Rejoins)
	}
	if snap.RecoveryFetches == 0 {
		t.Fatal("rejoin performed no recovery fetches")
	}

	// The rejoined node writes again and every node observes it.
	wf32(t, c, victim, victim, victim, 7777)
	shadow[victim] = 7777
	barrier(t, c)
	for node := 0; node < nodes; node++ {
		for w := 0; w < words; w += 5 {
			if got := rf32(t, c, node, node, w); got != shadow[w] {
				t.Fatalf("node %d word %d = %v, want %v", node, w, got, shadow[w])
			}
		}
	}
	if err := c.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverImperativeRestart covers Cluster.Restart, the imperative
// recovery entry point: kill, verify the view routes around the victim,
// restart, verify the node serves and writes again.
func TestFailoverImperativeRestart(t *testing.T) {
	const nodes, npages = 3, 2
	c, err := New(ftConfig(nodes, npages, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	wf32(t, c, 1, 1, 0, 11)
	barrier(t, c)
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	if got := c.DeadNodes(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DeadNodes = %v, want [1]", got)
	}
	if got := c.AliveSuccessor(1); got != 2 {
		t.Fatalf("AliveSuccessor(1) = %d, want 2", got)
	}
	if got := rf32(t, c, 0, 0, 0); got != 11 {
		t.Fatalf("word 0 = %v after crash, want 11", got)
	}
	if err := c.Restart(1); err != nil {
		t.Fatal(err)
	}
	if got := c.DeadNodes(); len(got) != 0 {
		t.Fatalf("DeadNodes = %v after restart, want none", got)
	}
	barrier(t, c)
	wf32(t, c, 1, 1, 4, 22)
	barrier(t, c)
	if got := rf32(t, c, 2, 2, 4); got != 22 {
		t.Fatalf("rejoined node's write = %v at node 2, want 22", got)
	}
	if got := rf32(t, c, 1, 1, 0); got != 11 {
		t.Fatalf("rejoined node reads word 0 = %v, want 11", got)
	}
	if err := c.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestFailoverHammerRace drives concurrent serves, lock traffic, and GC
// while a manager crashes and later rejoins, under both the single-shard
// and sharded page-service locking modes. Run with -race; the assertion
// is the absence of data races plus a coherent final state.
func TestFailoverHammerRace(t *testing.T) {
	for _, shards := range []int{1, 8} {
		name := "shards1"
		if shards == 8 {
			name = "shards8"
		}
		t.Run(name, func(t *testing.T) {
			const nodes, npages = 4, 4
			const victim = 1
			cfg := ftConfig(nodes, npages, nil)
			cfg.SerialFanOut = false // let fan-outs race
			cfg.ServiceShards = shards
			cfg.GCThresholdBytes = 1 // GC every barrier with stored diffs
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = c.Close() }()

			words := npages * memlayout.PageSize / 4
			var wg sync.WaitGroup
			workers := []int{0, 2, 3}
			phase := make(chan struct{}) // closed when the victim is dead
			for _, node := range workers {
				node := node
				wg.Add(1)
				go func() {
					defer wg.Done()
					lk := int32(victim) // the dying manager's shard
					for i := 0; i < 40; i++ {
						if _, err := c.AcquireLock(node, node, lk); err != nil {
							t.Error(err)
							return
						}
						w := (i*nodes + node) % words
						b, _, err := c.Span(node, node, w*4, 4, vm.Write)
						if err != nil {
							t.Error(err)
							return
						}
						memlayout.ViewF32(b).Set(0, float32(node*1000+i))
						if _, err := c.ReleaseLock(node, node, lk); err != nil {
							t.Error(err)
							return
						}
						if i == 20 {
							<-phase // wait until the victim is down
						}
					}
				}()
			}
			// The victim participates until it dies mid-traffic.
			for i := 0; i < 10; i++ {
				if _, err := c.AcquireLock(victim, victim, int32(victim)); err != nil {
					t.Fatal(err)
				}
				wf32(t, c, victim, victim, i, float32(i))
				if _, err := c.ReleaseLock(victim, victim, int32(victim)); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Kill(victim); err != nil {
				t.Fatal(err)
			}
			close(phase)
			wg.Wait()

			barrier(t, c)
			if err := c.Restart(victim); err != nil {
				t.Fatal(err)
			}
			barrier(t, c)
			if err := c.CheckCoherence(); err != nil {
				t.Fatal(err)
			}
			snap := c.Stats().Snapshot()
			if snap.Crashes != 1 || snap.Rejoins != 1 {
				t.Fatalf("Crashes/Rejoins = %d/%d, want 1/1", snap.Crashes, snap.Rejoins)
			}
			if snap.Failovers == 0 {
				t.Fatal("hammer never exercised a failover")
			}
		})
	}
}
