package dsm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/transport"
	"actdsm/internal/vm"
)

// Tests for the decentralized managers: the tree barrier, migrating
// page homes, sharded lock managers with grant forwarding, and the
// refcounted diff store that lets replies alias pooled buffers safely.

func TestNodeForIDSeam(t *testing.T) {
	// The old placement was int(p) % Nodes with p an int32-backed
	// PageID — fine until an id crosses a word seam. nodeForID must
	// stay in [0, n) for every int64, including negatives (Go's % takes
	// the dividend's sign) and values past either 32-bit boundary.
	cases := []struct {
		id int64
		n  int
	}{
		{0, 3}, {1, 3}, {2, 3}, {3, 3},
		{-1, 3}, {-3, 3}, {-4, 7},
		{1 << 31, 5}, {(1 << 31) - 1, 5}, {1 << 40, 5},
		{-(1 << 31), 5}, {-(1 << 40), 9},
		{int64(^uint64(0) >> 1), 11}, {-int64(^uint64(0)>>1) - 1, 11},
	}
	for _, tc := range cases {
		got := nodeForID(tc.id, tc.n)
		if got < 0 || got >= tc.n {
			t.Fatalf("nodeForID(%d, %d) = %d, out of range", tc.id, tc.n, got)
		}
		// Consistency with the mathematical mod for non-negative ids.
		if tc.id >= 0 && got != int(tc.id%int64(tc.n)) {
			t.Fatalf("nodeForID(%d, %d) = %d, want %d", tc.id, tc.n, got, tc.id%int64(tc.n))
		}
	}
	// Adjacent ids spread across nodes, negative or not.
	if nodeForID(-1, 4) == nodeForID(-2, 4) {
		t.Fatal("adjacent negative ids collapsed onto one node")
	}
}

func TestTreeLevelsShape(t *testing.T) {
	levels := treeLevels(10, 2)
	want := [][]int{{1, 2}, {3, 4, 5, 6}, {7, 8, 9}}
	if len(levels) != len(want) {
		t.Fatalf("levels = %v", levels)
	}
	for i := range want {
		if len(levels[i]) != len(want[i]) {
			t.Fatalf("level %d = %v, want %v", i, levels[i], want[i])
		}
		for j := range want[i] {
			if levels[i][j] != want[i][j] {
				t.Fatalf("level %d = %v, want %v", i, levels[i], want[i])
			}
		}
	}
	// Every non-root node appears exactly once, and parents sit in the
	// previous level, for several (n, k).
	for _, tc := range []struct{ n, k int }{{2, 2}, {5, 2}, {9, 3}, {64, 2}, {64, 8}, {7, 4}} {
		seen := map[int]bool{}
		lv := treeLevels(tc.n, tc.k)
		for li, l := range lv {
			for _, i := range l {
				if seen[i] {
					t.Fatalf("n=%d k=%d: node %d twice", tc.n, tc.k, i)
				}
				seen[i] = true
				p := treeParent(i, tc.k)
				if li == 0 {
					if p != 0 {
						t.Fatalf("n=%d k=%d: level-0 node %d parent %d", tc.n, tc.k, i, p)
					}
				} else {
					found := false
					for _, q := range lv[li-1] {
						if q == p {
							found = true
						}
					}
					if !found {
						t.Fatalf("n=%d k=%d: node %d parent %d not in level %d", tc.n, tc.k, i, p, li-1)
					}
				}
				if !isDescendant(i, p, tc.k) || !isDescendant(i, 0, tc.k) {
					t.Fatalf("n=%d k=%d: descendant relation broken at %d", tc.n, tc.k, i)
				}
			}
		}
		if len(seen) != tc.n-1 {
			t.Fatalf("n=%d k=%d: covered %d nodes", tc.n, tc.k, len(seen))
		}
	}
}

// TestTreeBarrierMatchesFlat runs the same workload under the flat
// broadcast and under tree barriers of several arities: every protocol
// counter except raw message traffic must be identical — the tree
// changes who carries the notices, not what the barrier computes.
func TestTreeBarrierMatchesFlat(t *testing.T) {
	const nodes, npages = 5, 4
	run := func(arity int) Snapshot {
		c, err := New(Config{Nodes: nodes, Pages: npages, BarrierArity: arity})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		chaosWorkload(t, c, nodes, npages)
		return c.Stats().Snapshot()
	}
	flat := run(0).Counters()
	for _, arity := range []int{2, 3, 8} {
		tree := run(arity).Counters()
		a, b := tree, flat
		a.Messages, b.Messages = 0, 0
		a.BytesTotal, b.BytesTotal = 0, 0
		if a != b {
			t.Fatalf("arity %d counters diverge from flat:\ntree: %+v\nflat: %+v", arity, tree, flat)
		}
	}
}

// TestTreeBarrierShapes soaks the tree barrier across node counts and
// arities, including ragged trees where the last internal node has
// fewer than k children.
func TestTreeBarrierShapes(t *testing.T) {
	for _, tc := range []struct{ nodes, arity int }{
		{2, 2}, {3, 2}, {4, 3}, {6, 4}, {7, 2}, {9, 3},
	} {
		c, err := New(Config{Nodes: tc.nodes, Pages: 3, BarrierArity: tc.arity})
		if err != nil {
			t.Fatal(err)
		}
		chaosWorkload(t, c, tc.nodes, 3)
		_ = c.Close()
	}
}

// TestHomeMigration checks the tentpole behaviour: after a barrier, a
// written page's home is its last writer, later demand fetches are
// served by the new home, and coherence holds across further rounds.
func TestHomeMigration(t *testing.T) {
	c, err := New(Config{Nodes: 3, Pages: 3, HomeMigration: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// Page 1's static home is node 1; node 2 writes it.
	wf32(t, c, 2, 16, 1024, 7.5)
	barrier(t, c)
	for i := 0; i < 3; i++ {
		if got := c.nodes[i].home(1); got != 2 {
			t.Fatalf("node %d thinks page 1's home is %d, want 2", i, got)
		}
	}
	if got := c.Stats().Snapshot().HomeMigrations; got == 0 {
		t.Fatal("no HomeMigrations counted")
	}
	// Demand fetch from node 0 must be served by the new home.
	var calls []msg.Kind
	var dests []int
	c.SetProbe(&Probe{TransportCall: func(from, to int, kind msg.Kind, bytes int, wall time.Duration, failed bool) {
		calls = append(calls, kind)
		dests = append(dests, to)
	}})
	if got := rf32(t, c, 0, 0, 1024); got != 7.5 {
		t.Fatalf("node 0 read %v, want 7.5", got)
	}
	c.SetProbe(nil)
	foundPageReq := false
	for i, k := range calls {
		if k == msg.KindPageRequest {
			foundPageReq = true
			if dests[i] != 2 {
				t.Fatalf("page request went to node %d, want migrated home 2", dests[i])
			}
		}
	}
	if !foundPageReq {
		t.Fatal("no PageRequest observed on demand miss")
	}

	// Ownership follows the latest writer on later barriers.
	wf32(t, c, 0, 0, 1025, 8.5)
	barrier(t, c)
	if got := c.nodes[1].home(1); got != 0 {
		t.Fatalf("page 1 home after second barrier = %d, want 0", got)
	}
	if got := rf32(t, c, 1, 8, 1024); got != 7.5 {
		t.Fatalf("node 1 read %v, want 7.5", got)
	}
	if err := c.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestHomeMigrationWorkloads soaks migration (with GC, which must
// consolidate at the migrated home) against the shadow-checked
// workload, flat and tree.
func TestHomeMigrationWorkloads(t *testing.T) {
	for _, tc := range []struct {
		name  string
		arity int
		gc    int
	}{
		{"flat", 0, -1},
		{"tree", 2, -1},
		{"flat-gc", 0, 1},
		{"tree-gc", 3, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const nodes, npages = 4, 4
			c, err := New(Config{
				Nodes: nodes, Pages: npages,
				HomeMigration:    true,
				BarrierArity:     tc.arity,
				GCThresholdBytes: tc.gc,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = c.Close() }()
			// Rotate sole ownership: in round r, node (p+r)%nodes writes
			// page p, so every barrier moves every page's home.
			words := npages * memlayout.PageSize / 4
			shadow := make([]float32, words)
			for round := 0; round < 4; round++ {
				for p := 0; p < npages; p++ {
					node := (p + round) % nodes
					for k := 0; k < 4; k++ {
						w := p*1024 + node*8 + k
						val := float32(round*1000 + p*100 + k)
						wf32(t, c, node, node, w, val)
						shadow[w] = val
					}
				}
				barrier(t, c)
				for p := 0; p < npages; p++ {
					if got := c.nodes[0].home(vm.PageID(p)); got != (p+round)%nodes {
						t.Fatalf("round %d: page %d home %d, want %d", round, p, got, (p+round)%nodes)
					}
				}
			}
			for node := 0; node < nodes; node++ {
				for w := 0; w < words; w += 7 {
					if got := rf32(t, c, node, node, w); got != shadow[w] {
						t.Fatalf("node %d word %d = %v, want %v", node, w, got, shadow[w])
					}
				}
			}
			if err := c.CheckCoherence(); err != nil {
				t.Fatal(err)
			}
			if got := c.Stats().Snapshot().HomeMigrations; got == 0 {
				t.Fatal("workload migrated nothing; test proves nothing")
			}
		})
	}
}

// TestLockShardsSpread checks the sharded lock managers: with the
// default sharding, acquires for a spread of locks are served by their
// shard owners across the cluster; LockShards: 1 restores the
// centralized node-0 baseline.
func TestLockShardsSpread(t *testing.T) {
	countDests := func(shards int) map[int]int {
		c, err := New(Config{Nodes: 4, Pages: 2, LockShards: shards})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		dests := map[int]int{}
		c.SetProbe(&Probe{TransportCall: func(from, to int, kind msg.Kind, bytes int, wall time.Duration, failed bool) {
			if kind == msg.KindLockAcquire || kind == msg.KindLockRelease {
				dests[to]++
			}
		}})
		// Node 3 works through 16 locks; every acquire that leaves the
		// node reveals the serving manager.
		for lk := int32(0); lk < 16; lk++ {
			if _, err := c.AcquireLock(3, 24, lk); err != nil {
				t.Fatal(err)
			}
			wf32(t, c, 3, 24, int(lk), float32(lk))
			if _, err := c.ReleaseLock(3, 24, lk); err != nil {
				t.Fatal(err)
			}
		}
		return dests
	}

	central := countDests(1)
	for to := range central {
		if to != 0 {
			t.Fatalf("LockShards=1 sent lock traffic to node %d: %v", to, central)
		}
	}
	if central[0] == 0 {
		t.Fatal("LockShards=1 produced no lock traffic")
	}

	sharded := countDests(0)
	// Node 3 self-serves its own shard; the other three shard owners
	// must each have seen traffic.
	for _, owner := range []int{0, 1, 2} {
		if sharded[owner] == 0 {
			t.Fatalf("shard owner %d saw no lock traffic: %v", owner, sharded)
		}
	}
	total := 0
	for _, n := range sharded {
		total += n
	}
	if share := float64(sharded[0]) / float64(total); share > 0.5 {
		t.Fatalf("node 0 still serves %.0f%% of lock traffic: %v", share*100, sharded)
	}
}

// TestLockGrantForwarding checks the migrating-ownership lock path: the
// shard manager redirects an acquirer to the previous holder, the
// holder serves the history directly, and causality is preserved
// across a three-node hand-off chain.
func TestLockGrantForwarding(t *testing.T) {
	c, err := New(Config{Nodes: 3, Pages: 2, HomeMigration: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	const lock = int32(4) // shard owner: node 1 with 3 nodes/shards

	if _, err := c.AcquireLock(0, 0, lock); err != nil {
		t.Fatal(err)
	}
	wf32(t, c, 0, 0, 0, 5.0)
	if _, err := c.ReleaseLock(0, 0, lock); err != nil {
		t.Fatal(err)
	}
	// Node 2's acquire goes to shard owner 1, which forwards to holder
	// 0; the pull must deliver node 0's write.
	if _, err := c.AcquireLock(2, 16, lock); err != nil {
		t.Fatal(err)
	}
	if got := rf32(t, c, 2, 16, 0); got != 5.0 {
		t.Fatalf("node 2 read %v through forwarded grant, want 5", got)
	}
	wf32(t, c, 2, 16, 0, 6.0)
	if _, err := c.ReleaseLock(2, 16, lock); err != nil {
		t.Fatal(err)
	}
	// Hand back to node 1 (the shard owner itself): holder is node 2.
	if _, err := c.AcquireLock(1, 8, lock); err != nil {
		t.Fatal(err)
	}
	if got := rf32(t, c, 1, 8, 0); got != 6.0 {
		t.Fatalf("node 1 read %v, want 6 (transitive history)", got)
	}
	if _, err := c.ReleaseLock(1, 8, lock); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Snapshot().LockForwards; got < 2 {
		t.Fatalf("LockForwards = %d, want >= 2", got)
	}
	barrier(t, c)
	if err := c.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestForwardedGrantPullRetry drops the first LockPull reply: the
// holder has served the history, the requester retries, and the
// re-served pull must carry the same notices (a pure read). The value
// still arrives exactly once.
func TestForwardedGrantPullRetry(t *testing.T) {
	var dropped atomic.Bool
	c, err := New(Config{
		Nodes: 3, Pages: 1,
		HomeMigration: true,
		Transport: transport.Options{
			MaxAttempts: 4,
			BackoffBase: time.Microsecond,
		},
		Chaos: &transport.ChaosOptions{
			Plan: func(from, to int, payload []byte, call int64) transport.Fault {
				if len(payload) > 0 && msg.Kind(payload[0]) == msg.KindLockPull &&
					dropped.CompareAndSwap(false, true) {
					return transport.FaultDropReply
				}
				return transport.FaultNone
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	const lock = int32(1) // shard owner: node 1

	// Node 2 caches the zero page so only the pulled notice can
	// invalidate it.
	if got := rf32(t, c, 2, 16, 0); got != 0 {
		t.Fatalf("initial read = %v", got)
	}
	if _, err := c.AcquireLock(0, 0, lock); err != nil {
		t.Fatal(err)
	}
	wf32(t, c, 0, 0, 0, 42)
	if _, err := c.ReleaseLock(0, 0, lock); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AcquireLock(2, 16, lock); err != nil {
		t.Fatal(err)
	}
	if got := rf32(t, c, 2, 16, 0); got != 42 {
		t.Fatalf("node 2 read %v after retried pull, want 42", got)
	}
	if _, err := c.ReleaseLock(2, 16, lock); err != nil {
		t.Fatal(err)
	}
	if !dropped.Load() {
		t.Fatal("planned fault never fired")
	}
	var pullRetries int64
	for _, cs := range c.Stats().Snapshot().Calls {
		if cs.Kind == "LockPull" {
			pullRetries = cs.Retries
		}
	}
	if pullRetries == 0 {
		t.Fatal("no LockPull retries recorded")
	}
}

// TestShardedLockChaosDedup drops and duplicates sharded lock traffic
// (one dropped LockAcquire reply, one duplicated LockRelease) under
// grant forwarding: retries and re-executions must leave every protocol
// counter identical to a fault-free run.
func TestShardedLockChaosDedup(t *testing.T) {
	workload := func(c *Cluster) {
		for round := 0; round < 3; round++ {
			for node := 0; node < 3; node++ {
				for lk := int32(0); lk < 4; lk++ {
					if _, err := c.AcquireLock(node, node*8, lk); err != nil {
						t.Fatal(err)
					}
					w := int(lk)*16 + node
					wf32(t, c, node, node*8, w, float32(round*100+node*10+int(lk)))
					if _, err := c.ReleaseLock(node, node*8, lk); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		barrier(t, c)
		if err := c.CheckCoherence(); err != nil {
			t.Fatal(err)
		}
	}
	run := func(chaos *transport.ChaosOptions) Snapshot {
		c, err := New(Config{
			Nodes: 3, Pages: 2,
			HomeMigration:    true,
			GCThresholdBytes: -1,
			Transport: transport.Options{
				MaxAttempts: 6,
				BackoffBase: time.Microsecond,
			},
			Chaos: chaos,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		workload(c)
		return c.Stats().Snapshot()
	}

	clean := run(nil)
	if clean.LockForwards == 0 {
		t.Fatal("workload never forwarded a grant; test proves nothing")
	}

	var dropAcq, dupRel atomic.Bool
	chaotic := run(&transport.ChaosOptions{
		Plan: func(from, to int, payload []byte, call int64) transport.Fault {
			if len(payload) == 0 {
				return transport.FaultNone
			}
			switch msg.Kind(payload[0]) {
			case msg.KindLockAcquire:
				if dropAcq.CompareAndSwap(false, true) {
					return transport.FaultDropReply
				}
			case msg.KindLockRelease:
				if dupRel.CompareAndSwap(false, true) {
					return transport.FaultDuplicate
				}
			}
			return transport.FaultNone
		},
	})
	if !dropAcq.Load() || !dupRel.Load() {
		t.Fatalf("faults fired: acquire %v, release %v", dropAcq.Load(), dupRel.Load())
	}
	if got, want := chaotic.Counters(), clean.Counters(); got != want {
		t.Fatalf("counters diverge under lock chaos:\nchaos: %+v\nclean: %+v", got, want)
	}
}

// TestTreeNodeFailureMidFanIn fails an internal tree node's links in
// both barrier phases: one aggregated enter loses its reply after the
// parent folded it, and one release relay loses its request. Phase
// retries (Config.BarrierRetries) must complete the barrier with
// protocol counters — beyond traffic and the retry counter itself —
// identical to a fault-free run.
func TestTreeNodeFailureMidFanIn(t *testing.T) {
	const nodes, npages = 7, 4
	run := func(chaos *transport.ChaosOptions, retries int) Snapshot {
		c, err := New(Config{
			Nodes: nodes, Pages: npages,
			BarrierArity:     2,
			BarrierRetries:   retries,
			GCThresholdBytes: -1,
			Chaos:            chaos,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		chaosWorkload(t, c, nodes, npages)
		return c.Stats().Snapshot()
	}

	clean := run(nil, 0)

	// Node 1 and node 2 are internal (children 3,4 and 5,6).
	var enterDrop, relayDrop atomic.Bool
	chaotic := run(&transport.ChaosOptions{
		Plan: func(from, to int, payload []byte, call int64) transport.Fault {
			if len(payload) == 0 {
				return transport.FaultNone
			}
			switch msg.Kind(payload[0]) {
			case msg.KindBarrierEnter:
				// Node 1's aggregate (already carrying its children's
				// folds) reaches the root but the reply is lost.
				if from == 1 && to == 0 && enterDrop.CompareAndSwap(false, true) {
					return transport.FaultDropReply
				}
			case msg.KindBarrierRelease:
				// The relay from node 2 down to node 5 never arrives.
				if from == 2 && to == 5 && relayDrop.CompareAndSwap(false, true) {
					return transport.FaultDropRequest
				}
			}
			return transport.FaultNone
		},
	}, 2)
	if !enterDrop.Load() || !relayDrop.Load() {
		t.Fatalf("faults fired: enter %v, relay %v", enterDrop.Load(), relayDrop.Load())
	}
	if chaotic.BarrierRetries == 0 {
		t.Fatal("no phase-level retries recorded")
	}
	got, want := chaotic.Counters(), clean.Counters()
	got.Messages, want.Messages = 0, 0
	got.BytesTotal, want.BytesTotal = 0, 0
	got.BarrierRetries, want.BarrierRetries = 0, 0
	if got != want {
		t.Fatalf("counters diverge after tree failures:\nchaos: %+v\nclean: %+v", got, want)
	}
}

// TestChaosPlanReplayDeterminism is the pinned-numbering regression:
// two runs of the same workload under the same deterministic
// drop-then-retry plan must observe the identical transport-call trace
// (from, to, kind, sequence number, fault) and identical protocol
// counters. This is what makes chaos plans keyed on the global call
// number replayable — see transport.RecordingPlan.
func TestChaosPlanReplayDeterminism(t *testing.T) {
	run := func() ([]transport.CallRecord, Counters) {
		log := &transport.CallLog{}
		c, err := New(Config{
			Nodes: 5, Pages: 4,
			BarrierArity:     2,
			HomeMigration:    true,
			SerialFanOut:     true,
			BarrierRetries:   2,
			GCThresholdBytes: -1,
			Transport: transport.Options{
				MaxAttempts: 6,
				BackoffBase: time.Microsecond,
			},
			Chaos: &transport.ChaosOptions{
				Plan: transport.RecordingPlan(func(from, to int, payload []byte, call int64) transport.Fault {
					// A sparse deterministic schedule keyed purely on
					// the sequence number: requests and replies are
					// lost at fixed points of the run.
					if call%67 == 13 {
						return transport.FaultDropRequest
					}
					if call%101 == 40 {
						return transport.FaultDropReply
					}
					return transport.FaultNone
				}, log),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		chaosWorkload(t, c, 5, 4)
		for node := 0; node < 5; node++ {
			lk := int32(node * 3)
			if _, err := c.AcquireLock(node, node*8, lk); err != nil {
				t.Fatal(err)
			}
			wf32(t, c, node, node*8, node*4, float32(node))
			if _, err := c.ReleaseLock(node, node*8, lk); err != nil {
				t.Fatal(err)
			}
		}
		barrier(t, c)
		return log.Records(), c.Stats().Snapshot().Counters()
	}

	traceA, countersA := run()
	traceB, countersB := run()
	if countersA != countersB {
		t.Fatalf("counters diverge between identical chaotic runs:\n%+v\n%+v", countersA, countersB)
	}
	if len(traceA) != len(traceB) {
		t.Fatalf("trace lengths diverge: %d vs %d", len(traceA), len(traceB))
	}
	faults := 0
	for i := range traceA {
		if traceA[i] != traceB[i] {
			t.Fatalf("trace diverges at call %d:\nA: %+v\nB: %+v", i, traceA[i], traceB[i])
		}
		if traceA[i].Fault != transport.FaultNone {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("plan injected nothing; test proves nothing")
	}
}

// TestDiffAliasGCHammer is the -race regression for the diff-reply
// aliasing fix: readers serve DiffRequests through the full handler
// path (serve, encode, release) while a writer keeps closing intervals
// — storing fresh diffs into pooled buffers — and garbage-collecting
// them. Without the refcount, a collected diff's bytes return to the
// pool and back into a new diff while an encode still reads them.
func TestDiffAliasGCHammer(t *testing.T) {
	c, err := New(Config{Nodes: 2, Pages: 1, GCThresholdBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	n := c.nodes[0]

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			intervals := make([]int32, 64)
			for i := range intervals {
				intervals[i] = int32(i + 1)
			}
			req := &msg.DiffRequest{From: 1, Page: 0, Intervals: intervals}
			for {
				select {
				case <-stop:
					return
				default:
				}
				reply, release, err := n.serve(1, req)
				if err != nil {
					t.Error(err)
					return
				}
				// Encode reads every aliased diff byte, exactly like
				// the transport handler.
				buf := msg.EncodeTo(msg.GetBuf(), reply)
				if release != nil {
					release()
				}
				msg.PutBuf(buf)
			}
		}()
	}

	// Writer: each lock release closes an interval, appending a diff
	// (into a pooled buffer) to node 0's store; periodic collects drop
	// them all, racing the readers' encodes.
	for i := 0; i < 400; i++ {
		if _, err := c.AcquireLock(0, 0, 1); err != nil {
			t.Fatal(err)
		}
		wf32(t, c, 0, 0, i%256, float32(i))
		if _, err := c.ReleaseLock(0, 0, 1); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if _, err := n.serveGCCollect(&msg.GCCollect{Page: 0}); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestDistributedManagersEndToEnd runs the fully decentralized
// configuration — tree barrier, sharded locks, migrating homes, GC,
// batching and prefetch — over both transports against the shadow
// workload.
func TestDistributedManagersEndToEnd(t *testing.T) {
	for _, useTCP := range []bool{false, true} {
		name := "local"
		if useTCP {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			c, err := New(Config{
				Nodes: 4, Pages: 4,
				BarrierArity:     2,
				HomeMigration:    true,
				GCThresholdBytes: 1,
				BatchDiffs:       true,
				PrefetchBudget:   8,
				UseTCP:           useTCP,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = c.Close() }()
			chaosWorkload(t, c, 4, 4)
		})
	}
}

// TestConfigValidation covers the new knobs' rejection paths.
func TestManagerConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 2, Pages: 1, LockShards: -1}); err == nil {
		t.Fatal("negative LockShards accepted")
	}
	if _, err := New(Config{Nodes: 2, Pages: 1, BarrierArity: 1}); err == nil {
		t.Fatal("BarrierArity 1 accepted")
	}
	if _, err := New(Config{Nodes: 2, Pages: 1, BarrierArity: -2}); err == nil {
		t.Fatal("negative BarrierArity accepted")
	}
	if _, err := New(Config{Nodes: 2, Pages: 1, Protocol: SingleWriter, HomeMigration: true}); err == nil {
		t.Fatal("HomeMigration with SingleWriter accepted")
	}
	// LockShards beyond the node count is fine: shards fold onto nodes.
	c, err := New(Config{Nodes: 2, Pages: 1, LockShards: 64})
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if mgr := c.lockManager(63); mgr < 0 || mgr >= 2 {
		t.Fatalf("lockManager(63) = %d", mgr)
	}
}

var _ = vm.PageID(0)
var _ = memlayout.PageSize
