package dsm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/sim"
	"actdsm/internal/vm"
)

// pageState is one node's view of one shared page. Guarded by the page's
// shard lock (see shard.go).
type pageState struct {
	// hasCopy is true when the node holds page data (possibly stale —
	// staleness is recorded in pending).
	hasCopy bool
	// dirty is true when the node has written the page in the current
	// interval; twin holds the pre-write image.
	dirty bool
	twin  []byte
	// pending lists write notices received but not yet applied; the
	// page is invalid while it is non-empty.
	pending []msg.Notice
	// prefetched is true when the page was brought current by a prefetch
	// round and has not been touched (hit) or re-invalidated (wasted)
	// since. Pure accounting: it never affects protocol decisions.
	prefetched bool
	// appliedVT[w] is the highest interval of writer w whose diff has
	// been applied to (or is reflected in) the local copy. nil means
	// all zeros.
	appliedVT []int32
}

// staleOrDup reports whether a notice is already reflected locally or
// already queued.
func (st *pageState) staleOrDup(n msg.Notice) bool {
	if st.appliedVT != nil && n.Interval <= st.appliedVT[n.Writer] {
		return true
	}
	for _, p := range st.pending {
		if p.Writer == n.Writer && p.Interval == n.Interval {
			return true
		}
	}
	return false
}

func (st *pageState) noteApplied(nodes int, writer, interval int32) {
	if st.appliedVT == nil {
		st.appliedVT = make([]int32, nodes)
	}
	if interval > st.appliedVT[writer] {
		st.appliedVT[writer] = interval
	}
}

// mgrLog is a lock manager's shared, deduplicated, append-only log of
// every notice that has flowed through any lock it manages since the last
// barrier. Grants send each requesting node only the suffix it has not
// yet received, so repeated acquires don't re-ship the same history — the
// incremental delivery real CVM achieves with vector timestamps. Sending
// the shared log (a superset of any one lock's history) preserves the
// transitive-causality guarantee.
//
// The high-water mark for the suffix is *requester-confirmed*: the
// acquire message echoes the log position of the last grant the requester
// applied (LockAcquire.Pos), and the manager serves from there. Keeping
// the mark on the manager and advancing it when serving would lose
// notices if the grant reply is dropped and the transport retries the
// acquire — the retried request would be served from past the notices
// the requester never received.
type mgrLog struct {
	log  []msg.Notice
	have map[[3]int32]bool // (page, writer, interval)
	// lockLam[lock] is the Lamport clock of the lock's last release.
	lockLam map[int32]int32
	// holder[lock] is the node that last released the lock (grant
	// forwarding: the manager names the holder instead of shipping
	// history, and the acquirer pulls from it directly). Only
	// maintained when Config.HomeMigration is on.
	holder map[int32]int32
}

func newMgrLog() *mgrLog {
	return &mgrLog{
		have:    make(map[[3]int32]bool),
		lockLam: make(map[int32]int32),
		holder:  make(map[int32]int32),
	}
}

func (ml *mgrLog) add(ns []msg.Notice) {
	for _, n := range ns {
		k := [3]int32{n.Page, n.Writer, n.Interval}
		if ml.have[k] {
			continue
		}
		ml.have[k] = true
		ml.log = append(ml.log, n)
	}
}

func (ml *mgrLog) reset() {
	ml.log = nil
	ml.have = make(map[[3]int32]bool)
	ml.lockLam = make(map[int32]int32)
	ml.holder = make(map[int32]int32)
}

// node is one DSM node: a private copy of the shared segment plus the
// protocol state that keeps it consistent.
//
// Locking discipline (per-concern, see doc.go for the full model):
//
//   - Per-page protocol state — the pages entries, the page's protection,
//     its segment window, and its stored diffs — is guarded by the page's
//     shard lock (shards/shardMask, shard.go). Independent requests on
//     pages in different shards service in parallel; read-only serves
//     share a shard's read lock.
//   - mu guards the synchronization-side state: interval counter, seen
//     vector, the fresh/known notice histories with their high-water
//     marks, and the prefetch windows (faultWin, late, pushedEpoch,
//     pushCost). Helper methods with a Locked suffix require it held.
//   - lockMgrMu guards the manager-side shared notice log (locks).
//   - swMu guards the single-writer ownership table (sw).
//   - chargeMu guards the virtual-time charge plumbing (charge, curTID).
//   - lamport and diffBytes are atomics: folded and read lock-free.
//
// Lock order: mu and the leaf mutexes are never held across a shard
// lock acquisition or a transport call, and no operation holds two shard
// locks at once, so the scheme is deadlock-free by construction.
type node struct {
	id int
	c  *Cluster

	// Immutable after newNode.
	seg   []byte
	as    *vm.AddressSpace
	pages []pageState
	// shards stripe the per-page state; page p belongs to
	// shards[p & shardMask].
	shards    []pageShard
	shardMask uint32
	// prefetchOn is true when Config.PrefetchBudget enabled the fault
	// window; it gates the fault path's prefetch accounting so the
	// common no-prefetch configuration never touches mu on a fault.
	prefetchOn bool

	// homes[p] is the page's current home node. Initialized to the
	// static round-robin placement; rewritten only by HomeMigration
	// decisions riding barrier releases. Atomic because demand serves
	// read it while a barrier-release server goroutine updates it.
	homes []atomic.Int32

	// diffBytes tracks the node's stored diff volume (the GC trigger).
	diffBytes atomic.Int64
	// lamport is the node's Lamport clock: incremented when an interval
	// closes, max-folded when a stamped message arrives.
	lamport atomic.Int32

	// mu guards the synchronization-side state below (never held across
	// a shard lock or a transport call).
	mu       sync.Mutex
	interval int32 // index the next closed interval will get (starts at 1)
	// seen[w] is the contiguous prefix of w's intervals whose notices
	// this node is guaranteed to have received (advanced at barriers).
	seen []int32
	// fresh accumulates notices created by this node since the last
	// barrier; the barrier flushes it.
	fresh []msg.Notice
	// known accumulates every notice this node has created or received
	// since the last barrier. Lock releases send the whole list so that
	// grants carry *transitive* causal history: if this node's writes
	// happened after it observed another node's interval, any grant
	// that delivers our notices also delivers that interval's. Without
	// this, a third node can receive causally-ordered diffs out of
	// order and apply an older value over a newer one (lost update).
	known     []msg.Notice
	knownHave map[[3]int32]bool
	// sentKnown[mgr] is the prefix of known already shipped to manager
	// node mgr by this node's lock releases (reset at barriers).
	sentKnown []int
	// lockPos[mgr] is the prefix of manager mgr's shared notice log this
	// node has received and applied via lock grants. It advances only
	// after a grant is applied and is echoed in the next acquire, keeping
	// grant delivery incremental yet retry-safe (reset at barriers).
	lockPos []int32
	// lockMark[lock] is the length of known snapshotted when this node
	// last released the lock (grant forwarding): a later LockPull for
	// the lock is served exactly that prefix, so notices created after
	// the release never leak into an older grant. Reset at barriers.
	lockMark map[int32]int
	// faultWin records the pages that missed remotely — or hit a
	// prefetched copy — since the last prefetch round. It is the
	// fallback predictor when no tracker-driven predictor is installed:
	// the pages a node's threads needed last epoch approximate the pages
	// they will need next epoch. Nil unless prefetch is enabled.
	faultWin *vm.Bitmap
	// late marks pages the predictor selected last round but the budget
	// excluded; a demand miss on one counts as PrefetchLate.
	late map[vm.PageID]bool
	// pushedEpoch counts pages brought current by barrier-piggybacked
	// push in the current epoch; the pull prefetch round charges them
	// against the budget and resets the count.
	pushedEpoch int
	// pushCost accumulates the virtual-time cost of applying pushed
	// diffs; Cluster.Barrier drains it into the node's episode cost.
	pushCost sim.Time

	// lockMgrMu guards locks (the shared notice log for locks this node
	// manages) and shadow (the fault-tolerance mirrors of other
	// managers' logs, keyed by primary manager id, fed by shadow lock
	// releases).
	lockMgrMu sync.Mutex
	locks     *mgrLog
	shadow    map[int]*mgrLog

	// replMu guards the receiver side of the fault-tolerance replica
	// store (Config.FaultTolerance): state replicated here by ring
	// predecessors via ReplicaDelta and shadow releases, served back
	// out when the origin is dead. The sender-side marks (replSent,
	// replSeq) live under mu with the known history they track.
	replMu sync.Mutex
	// replKnown[origin] is the origin's replicated causal history for
	// the current epoch (its known set, shipped incrementally).
	replKnown map[int][]msg.Notice
	// replLockMark[origin][lock] is the length of replKnown[origin] at
	// the origin's last release of the lock — the mirror of the
	// origin's own lockMark, recorded when its shadow release arrives.
	replLockMark map[int]map[int32]int
	// replDiffs[origin][page][interval] holds copies of the origin's
	// stored diffs (outside diffBytes: replicas never trigger GC).
	replDiffs map[int]map[vm.PageID]map[int32][]byte
	// replState[origin] is the origin's replicated interval counter,
	// Lamport clock, and delta-sequence high-water mark.
	replState map[int]replMeta
	// replSent is the prefix of known already shipped in replica deltas
	// (guarded by mu); replSeq numbers the deltas for receiver dedup.
	replSent int
	replSeq  int32

	// swMu guards sw, the manager-side single-writer ownership state
	// (nil under the multi-writer protocol).
	swMu sync.Mutex
	sw   []swState

	// chargeMu guards charge and curTID. charge, when non-nil, receives
	// virtual-time charges from the engine-side access path (set by
	// Cluster.Span for the duration of one access); curTID is the
	// thread being charged.
	chargeMu sync.Mutex
	charge   *sim.ThreadInterval
	curTID   int
}

func newNode(id int, c *Cluster, npages int) *node {
	n := &node{
		id:        id,
		c:         c,
		seg:       make([]byte, npages*memlayout.PageSize),
		pages:     make([]pageState, npages),
		shards:    make([]pageShard, c.shardCount),
		shardMask: uint32(c.shardCount - 1),
		seen:      make([]int32, c.cfg.Nodes),
		locks:     newMgrLog(),
		sentKnown: make([]int, c.cfg.Nodes),
		lockPos:   make([]int32, c.cfg.Nodes),
		lockMark:  make(map[int32]int),
		knownHave: make(map[[3]int32]bool),
		homes:     make([]atomic.Int32, npages),
	}
	for i := range n.shards {
		n.shards[i].diffs = make(map[vm.PageID]map[int32]*diffRef)
		// A single shard reproduces the pre-sharding one-big-mutex
		// behaviour exactly: reads do not share (see pageShard).
		n.shards[i].exclusive = c.shardCount == 1
	}
	n.as = vm.NewAddressSpace(npages, n.resolveFault)
	n.interval = 1
	if c.cfg.PrefetchBudget != 0 {
		n.prefetchOn = true
		n.faultWin = vm.NewBitmap(npages)
		n.late = make(map[vm.PageID]bool)
	}
	if c.cfg.Protocol == SingleWriter {
		n.initSingleWriter()
	}
	if c.cfg.FaultTolerance {
		n.shadow = make(map[int]*mgrLog)
		n.replKnown = make(map[int][]msg.Notice)
		n.replLockMark = make(map[int]map[int32]int)
		n.replDiffs = make(map[int]map[vm.PageID]map[int32][]byte)
		n.replState = make(map[int]replMeta)
	}
	for p := range n.pages {
		n.homes[p].Store(int32(c.staticHome(vm.PageID(p))))
		home := c.staticHome(vm.PageID(p))
		if home == id {
			n.pages[p].hasCopy = true
			n.as.SetProt(vm.PageID(p), vm.ProtRead)
		}
		if c.cfg.FaultTolerance && (home+1)%c.cfg.Nodes == id {
			// Standby pre-seed: every page starts with two identical
			// (all-zero) copies — home and ring successor — so a home
			// crash always finds a base image at the failover target.
			n.pages[p].hasCopy = true
			n.as.SetProt(vm.PageID(p), vm.ProtRead)
		}
	}
	return n
}

// home returns the page's current home node: the static round-robin
// placement until a HomeMigration decision moves it to the page's last
// writer.
func (n *node) home(p vm.PageID) int { return int(n.homes[p].Load()) }

// pageData returns the byte window of page p in the node's segment.
// Guarded by the page's shard lock whenever another goroutine could be
// active on the node.
func (n *node) pageData(p vm.PageID) []byte {
	off := int(p) * memlayout.PageSize
	return n.seg[off : off+memlayout.PageSize]
}

func (n *node) addCharge(ti sim.ThreadInterval) {
	n.chargeMu.Lock()
	if n.charge != nil {
		n.charge.Add(ti)
	}
	n.chargeMu.Unlock()
}

// setCharge installs (or, with nil, clears) the virtual-time charge sink
// for the node's current engine-side access.
func (n *node) setCharge(ti *sim.ThreadInterval, tid int) {
	n.chargeMu.Lock()
	n.charge = ti
	n.curTID = tid
	n.chargeMu.Unlock()
}

// bumpLamport folds a received Lamport clock into the node's (max).
func (n *node) bumpLamport(lam int32) {
	for {
		cur := n.lamport.Load()
		if lam <= cur || n.lamport.CompareAndSwap(cur, lam) {
			return
		}
	}
}

// addPending queues a write notice, invalidating the page. Self-locking
// (takes the page's shard lock).
func (n *node) addPending(nt msg.Notice) {
	if int(nt.Writer) == n.id {
		return // own writes are already in the local copy
	}
	sh := n.lockShard(vm.PageID(nt.Page))
	n.addPendingShardLocked(nt)
	sh.mu.Unlock()
}

// addPendingShardLocked is addPending with the page's shard lock already
// held.
func (n *node) addPendingShardLocked(nt msg.Notice) {
	if int(nt.Writer) == n.id {
		return
	}
	st := &n.pages[nt.Page]
	// MutationNoNoticeDedup (test-only) disables the stale/duplicate
	// filter so the checker can prove it detects double application.
	if n.c.cfg.Mutation != MutationNoNoticeDedup && st.staleOrDup(nt) {
		return
	}
	if st.prefetched {
		// Invalidated before any local touch: the prefetch was wasted.
		st.prefetched = false
		n.c.stats.PrefetchWasted.Add(1)
	}
	st.pending = append(st.pending, nt)
	if st.hasCopy {
		n.as.SetProt(vm.PageID(nt.Page), vm.ProtNone)
	}
}

// closeInterval ends the node's current interval: every dirty page is
// diffed against its twin, the diff is stored locally, and a write
// notice is produced. Returns the notices and the CPU cost of diffing.
// Self-locking: scans shard by shard, then diffs each dirty page under
// its shard lock, so concurrent serves of unrelated pages proceed.
func (n *node) closeInterval() ([]msg.Notice, sim.Time) {
	// Collect the dirty set with a strided per-shard scan, then sort:
	// notices must be produced in ascending page order (the order the
	// old full-scan produced), which downstream determinism relies on.
	var dirtyPages []vm.PageID
	nshards := len(n.shards)
	for s := 0; s < nshards; s++ {
		sh := &n.shards[s]
		if !sh.mu.TryRLock() {
			n.c.stats.ShardContention.Add(1)
			sh.mu.RLock()
		}
		for p := s; p < len(n.pages); p += nshards {
			if n.pages[p].dirty {
				dirtyPages = append(dirtyPages, vm.PageID(p))
			}
		}
		sh.mu.RUnlock()
	}
	if len(dirtyPages) == 0 {
		return nil, 0
	}
	sort.Slice(dirtyPages, func(i, j int) bool { return dirtyPages[i] < dirtyPages[j] })

	lam := n.lamport.Add(1)
	n.lockSync()
	iv := n.interval
	n.interval++
	n.mu.Unlock()

	var notices []msg.Notice
	var cost sim.Time
	for _, p := range dirtyPages {
		sh := n.lockShard(p)
		st := &n.pages[p]
		diff := AppendDiff(getDiffBuf(), st.twin, n.pageData(p))
		cost += sim.Time(memlayout.PageSize) * n.c.costs.DiffPerByte
		putPageBuf(st.twin)
		st.twin = nil
		st.dirty = false
		n.as.SetProt(p, vm.ProtRead) // next write re-twins in the new interval
		if len(diff) == 0 {
			putDiffBuf(diff)
			sh.mu.Unlock()
			continue // silent store: wrote the same values
		}
		m, ok := sh.diffs[p]
		if !ok {
			m = make(map[int32]*diffRef)
			sh.diffs[p] = m
		}
		m[iv] = newDiffRef(diff)
		n.diffBytes.Add(int64(len(diff)))
		n.c.stats.DiffsCreated.Add(1)
		st.noteApplied(n.c.cfg.Nodes, int32(n.id), iv)
		sh.mu.Unlock()
		notices = append(notices, msg.Notice{
			Page: int32(p), Writer: int32(n.id), Interval: iv, Lam: lam,
		})
	}
	n.lockSync()
	n.fresh = append(n.fresh, notices...)
	n.addKnownLocked(notices)
	n.mu.Unlock()
	n.c.probeIntervalClosed(n.id, notices)
	return notices, cost
}

// addKnownLocked records notices in the node's since-last-barrier causal
// history (deduplicated). Requires mu.
func (n *node) addKnownLocked(ns []msg.Notice) {
	for _, nt := range ns {
		k := [3]int32{nt.Page, nt.Writer, nt.Interval}
		if n.knownHave[k] {
			continue
		}
		n.knownHave[k] = true
		n.known = append(n.known, nt)
	}
}

// resolveFault is the vm fault handler for engine-side accesses: it
// implements the coherence protocol's fault path. Called without any
// lock held; it takes the page's shard lock around state manipulation
// and never holds a lock across a transport call.
func (n *node) resolveFault(tid int, p vm.PageID, a vm.Access) error {
	c := n.c
	if c.cfg.Protocol == SingleWriter {
		return n.resolveFaultSW(tid, p, a)
	}
	c.stats.CoherenceFaults.Add(1)
	n.addCharge(sim.ThreadInterval{Overhead: c.costs.SoftFault})

	sh := n.rlockShard(p)
	st := &n.pages[p]
	needFull := !st.hasCopy
	var pending []msg.Notice
	if !needFull && len(st.pending) > 0 {
		pending = append(pending, st.pending...)
	}
	sh.runlock()

	remote := false
	switch {
	case needFull:
		if err := n.fetchFullPage(tid, p, ApplyDemand); err != nil {
			return err
		}
		remote = true
	case len(pending) > 0:
		ok, err := n.fetchAndApplyDiffs(tid, p, pending, ApplyDemand)
		if err != nil {
			return err
		}
		if !ok {
			// A writer garbage-collected a needed diff; fall back
			// to a full fetch from the manager.
			if err := n.fetchFullPage(tid, p, ApplyDemand); err != nil {
				return err
			}
		}
		remote = true
	}

	sh = n.lockShard(p)
	st = &n.pages[p]
	n.as.SetProt(p, vm.ProtRead)
	if a == vm.Write {
		if st.twin == nil {
			st.twin = getPageBuf()
			copy(st.twin, n.pageData(p))
			c.stats.TwinsCreated.Add(1)
			n.addCharge(sim.ThreadInterval{Overhead: c.costs.TwinCopy})
		}
		st.dirty = true
		n.as.SetProt(p, vm.ProtReadWrite)
	}
	sh.mu.Unlock()

	if remote {
		if n.prefetchOn {
			n.lockSync()
			n.faultWin.Set(p)
			if n.late[p] {
				delete(n.late, p)
				c.stats.PrefetchLate.Add(1)
			}
			n.mu.Unlock()
		}
		c.stats.RemoteMisses.Add(1)
		c.notifyRemoteFault(n.id, tid, p)
	}
	return nil
}

// fetchFullPage brings a page current via its current home (the static
// manager until a migration moves it, or — under fault tolerance — the
// home's ring standby while the home is dead). tid is the faulting
// thread (< 0 for server-side fetches) and src classifies the path for
// the probe: ApplyDemand for fault-path fetches, ApplyServer for
// recovery machinery (standby reseeding, rejoin re-fetches).
func (n *node) fetchFullPage(tid int, p vm.PageID, src ApplySource) error {
	c := n.c
	var (
		reply msg.Message
		wire  sim.Time
	)
	for attempt := 0; ; attempt++ {
		mgr := n.effHome(p)
		sh := n.rlockShard(p)
		req := &msg.PageRequest{From: int32(n.id), Page: int32(p)}
		req.Pending = append(req.Pending, n.pages[p].pending...)
		sh.runlock()

		var err error
		reply, wire, err = c.call(n.id, mgr, req)
		if err != nil {
			if c.cfg.FaultTolerance && isNodeDown(err) && attempt < c.cfg.Nodes && c.refreshView() > 0 {
				c.stats.Failovers.Add(1)
				continue // home died mid-fetch: re-resolve to its standby
			}
			return fmt.Errorf("dsm: node %d fetch page %d: %w", n.id, p, err)
		}
		break
	}
	pr, ok := reply.(*msg.PageReply)
	if !ok {
		return fmt.Errorf("dsm: node %d fetch page %d: unexpected reply %T", n.id, p, reply)
	}
	c.stats.PageFetches.Add(1)
	if src != ApplyDemand {
		c.stats.RecoveryFetches.Add(1)
	}
	n.addCharge(sim.ThreadInterval{Stall: wire})
	c.probeRemoteFetch(n.id, tid, FetchPage, p, wire)

	sh := n.lockShard(p)
	st := &n.pages[p]
	copy(n.pageData(p), pr.Data)
	st.hasCopy = true
	st.pending = st.pending[:0]
	if st.appliedVT == nil {
		st.appliedVT = make([]int32, c.cfg.Nodes)
	}
	for w, v := range pr.AppliedVT {
		if w < len(st.appliedVT) && v > st.appliedVT[w] {
			st.appliedVT[w] = v
		}
	}
	vt := append([]int32(nil), st.appliedVT...)
	sh.mu.Unlock()
	// The decoded page image has been copied into the segment; its
	// buffer can back a future twin or serve.
	putPageBuf(pr.Data)
	n.c.probePageFetched(n.id, p, src, vt)
	return nil
}

// fetchAndApplyDiffs retrieves the diffs named by pending from their
// writers and applies them in (Lamport, writer) order. It returns false if
// any writer has garbage-collected a needed diff. tid is the faulting
// thread (< 0 for server-side fetches) and src classifies the protocol
// path for the probe (demand fault vs. manager serving).
func (n *node) fetchAndApplyDiffs(tid int, p vm.PageID, pending []msg.Notice, src ApplySource) (bool, error) {
	c := n.c
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].Lam != pending[j].Lam {
			return pending[i].Lam < pending[j].Lam
		}
		if pending[i].Writer != pending[j].Writer {
			return pending[i].Writer < pending[j].Writer
		}
		return pending[i].Interval < pending[j].Interval
	})

	// Fetch per writer, preserving global application order afterwards.
	type fetched struct {
		notice msg.Notice
		diff   []byte
	}
	byWriter := make(map[int32][]msg.Notice)
	for _, nt := range pending {
		byWriter[nt.Writer] = append(byWriter[nt.Writer], nt)
	}
	got := make(map[[2]int32][]byte, len(pending))
	if c.cfg.BatchDiffs {
		// Batched path: one DiffBatchRequest per writer, fanned out in
		// parallel; the stall is the slowest round trip, not the sum.
		batched, wire, complete, err := n.fetchDiffBatches(byWriter)
		if err != nil {
			return false, err
		}
		n.addCharge(sim.ThreadInterval{Stall: wire})
		n.c.probeRemoteFetch(n.id, tid, FetchDiffBatch, p, wire)
		if !complete {
			return false, nil // garbage-collected
		}
		for k, df := range batched {
			got[[2]int32{k[1], k[2]}] = df
		}
	} else {
		// Iterate writers in a fixed order for determinism.
		writers := make([]int32, 0, len(byWriter))
		for w := range byWriter {
			writers = append(writers, w)
		}
		sort.Slice(writers, func(i, j int) bool { return writers[i] < writers[j] })
		for _, w := range writers {
			nts := byWriter[w]
			req := &msg.DiffRequest{From: int32(n.id), Page: int32(p), Writer: w}
			for _, nt := range nts {
				req.Intervals = append(req.Intervals, nt.Interval)
			}
			var (
				reply msg.Message
				wire  sim.Time
			)
			for attempt := 0; ; attempt++ {
				target := int(w)
				if c.cfg.FaultTolerance && c.isDead(target) {
					// The writer is dead: its replicated diff store on
					// the ring standby serves in its stead.
					target = c.aliveSucc(target)
					c.stats.Failovers.Add(1)
				}
				var err error
				if target == n.id {
					reply, err = n.serveReplicaDiffs(req)
				} else {
					reply, wire, err = c.call(n.id, target, req)
				}
				if err != nil {
					if c.cfg.FaultTolerance && isNodeDown(err) && attempt < c.cfg.Nodes && c.refreshView() > 0 {
						c.stats.Failovers.Add(1)
						continue
					}
					return false, fmt.Errorf("dsm: node %d fetch diffs page %d from %d: %w", n.id, p, w, err)
				}
				break
			}
			dr, ok := reply.(*msg.DiffReply)
			if !ok || len(dr.Diffs) != len(nts) {
				return false, fmt.Errorf("dsm: node %d bad diff reply for page %d from %d", n.id, p, w)
			}
			c.stats.DiffFetches.Add(1)
			n.addCharge(sim.ThreadInterval{Stall: wire})
			c.probeRemoteFetch(n.id, tid, FetchDiff, p, wire)
			for i, df := range dr.Diffs {
				if df == nil {
					return false, nil // garbage-collected
				}
				got[[2]int32{w, nts[i].Interval}] = df
				c.stats.BytesDiff.Add(int64(len(df)))
			}
		}
	}

	sh := n.lockShard(p)
	defer sh.mu.Unlock()
	st := &n.pages[p]
	var applyCost sim.Time
	applied := make([]fetched, 0, len(pending))
	for _, nt := range pending {
		df := got[[2]int32{nt.Writer, nt.Interval}]
		applied = append(applied, fetched{nt, df})
	}
	for _, f := range applied {
		if err := ApplyDiff(n.pageData(p), f.diff); err != nil {
			return false, fmt.Errorf("dsm: node %d apply diff page %d: %w", n.id, p, err)
		}
		applyCost += sim.Time(len(f.diff)) * c.costs.DiffPerByte
		st.noteApplied(c.cfg.Nodes, f.notice.Writer, f.notice.Interval)
		n.bumpLamport(f.notice.Lam)
		c.probeDiffApplied(n.id, src, f.notice)
	}
	n.addCharge(sim.ThreadInterval{Overhead: applyCost})
	// Remove exactly the notices we applied; concurrent server-side
	// additions (queued while the fetch was in flight) survive.
	keep := st.pending[:0]
	for _, nt := range st.pending {
		if _, ok := got[[2]int32{nt.Writer, nt.Interval}]; !ok {
			keep = append(keep, nt)
		}
	}
	st.pending = keep
	return true, nil
}

// serve dispatches an incoming protocol message. It is the transport
// handler body and may run on a server goroutine in TCP mode — or, since
// the sharded locking scheme, concurrently with other serves and with
// the node's own application threads. The returned release func, when
// non-nil, must be called once the reply has been encoded: diff serves
// alias refcounted stored bytes and pin them only until then.
func (n *node) serve(from int, m msg.Message) (msg.Message, func(), error) {
	switch req := m.(type) {
	case *msg.PageRequest:
		return noRelease(n.servePageRequest(req))
	case *msg.DiffRequest:
		if n.c.cfg.FaultTolerance && int(req.Writer) != n.id {
			// Standby path: the writer is dead and the requester was
			// re-routed here; serve from the replicated diff store.
			return noRelease(n.serveReplicaDiffs(req))
		}
		return n.serveDiffRequest(req)
	case *msg.DiffBatchRequest:
		return n.serveDiffBatchRequest(req)
	case *msg.BarrierEnter:
		return noRelease(n.serveBarrierEnter(req))
	case *msg.BarrierRelease:
		return noRelease(n.serveBarrierRelease(req))
	case *msg.LockAcquire:
		if primary := n.c.lockManager(req.Lock); n.c.cfg.FaultTolerance && primary != n.id {
			return noRelease(n.serveLockAcquireShadow(primary, req))
		}
		return noRelease(n.serveLockAcquire(req))
	case *msg.LockRelease:
		if primary := n.c.lockManager(req.Lock); n.c.cfg.FaultTolerance && primary != n.id {
			return noRelease(n.serveLockReleaseShadow(primary, req))
		}
		return noRelease(n.serveLockRelease(req))
	case *msg.LockPull:
		if n.c.cfg.FaultTolerance && int(req.Holder) != n.id {
			return noRelease(n.serveLockPullShadow(req))
		}
		return noRelease(n.serveLockPull(req))
	case *msg.GCCollect:
		return noRelease(n.serveGCCollect(req))
	case *msg.ReplicaDelta:
		return noRelease(n.serveReplicaDelta(req))
	case *msg.RejoinRequest:
		return noRelease(n.serveRejoinRequest(req))
	case *msg.SWRead:
		return noRelease(n.serveSWRead(req))
	case *msg.SWWrite:
		return noRelease(n.serveSWWrite(req))
	case *msg.SWDowngrade:
		return noRelease(n.serveSWDowngrade(req))
	case *msg.SWFlush:
		return noRelease(n.serveSWFlush(req))
	case *msg.SWInvalidate:
		return noRelease(n.serveSWInvalidate(req))
	default:
		return nil, nil, fmt.Errorf("dsm: node %d: unexpected message %T", n.id, m)
	}
}

// noRelease adapts a serve without retained references to the
// dispatcher's three-value shape.
func noRelease(m msg.Message, err error) (msg.Message, func(), error) {
	return m, nil, err
}

// servePageRequest brings the home's own copy of the page current
// (merging the requester's pending notices with its own) and replies with
// the full page image. The reply's page buffer is pooled; the transport
// handler recycles it after encoding. With HomeMigration the serving
// node may be a migrated home rather than the static manager; it holds
// the last writer's copy and pulls any other writers' diffs on demand,
// exactly as the static manager would.
func (n *node) servePageRequest(req *msg.PageRequest) (msg.Message, error) {
	p := vm.PageID(req.Page)
	if n.effHome(p) != n.id {
		return nil, fmt.Errorf("dsm: node %d is not the home of page %d", n.id, p)
	}
	n.c.probeNoticesDelivered(n.id, ViaPageRequest, req.Pending)
	sh := n.lockShard(p)
	st := &n.pages[p]
	for _, nt := range req.Pending {
		if int(nt.Writer) != n.id &&
			(n.c.cfg.Mutation == MutationNoNoticeDedup || !st.staleOrDup(nt)) {
			st.pending = append(st.pending, nt)
			n.as.SetProt(p, vm.ProtNone)
		}
	}
	pending := append([]msg.Notice(nil), st.pending...)
	sh.mu.Unlock()

	if len(pending) > 0 {
		ok, err := n.fetchAndApplyDiffs(-1, p, pending, ApplyServer)
		if err != nil {
			return nil, err
		}
		if !ok {
			// A diff the manager needs was collected — cannot
			// happen, because GC brings the manager current before
			// dropping diffs; report loudly if it ever does.
			return nil, fmt.Errorf("dsm: manager %d lost diffs for page %d", n.id, p)
		}
		sh = n.lockShard(p)
		n.as.SetProt(p, vm.ProtRead)
		sh.mu.Unlock()
	}

	sh = n.rlockShard(p)
	st = &n.pages[p]
	data := getPageBuf()
	copy(data, n.pageData(p))
	vt := make([]int32, n.c.cfg.Nodes)
	copy(vt, st.appliedVT)
	n.holdForBench()
	sh.runlock()
	return &msg.PageReply{Page: req.Page, Data: data, AppliedVT: vt}, nil
}

// serveDiffRequest returns this node's stored diffs for the requested
// intervals of a page; nil entries mark garbage-collected diffs. A pure
// read under the shard's read lock, so any number of peers can fetch
// diffs from this node concurrently. The reply aliases the stored bytes
// (no copy); each aliased diff is retained under the shard lock — while
// the store still holds its own reference — and released by the caller
// once the reply is encoded, so a GC drop racing the encode cannot
// recycle the bytes mid-read.
func (n *node) serveDiffRequest(req *msg.DiffRequest) (msg.Message, func(), error) {
	p := vm.PageID(req.Page)
	out := &msg.DiffReply{Page: req.Page, Diffs: make([][]byte, len(req.Intervals))}
	var pinned retained
	sh := n.rlockShard(p)
	store := sh.diffs[p]
	for i, iv := range req.Intervals {
		if d := store[iv]; d != nil {
			d.retain()
			pinned = append(pinned, d)
			out.Diffs[i] = d.b
		}
	}
	n.holdForBench()
	sh.runlock()
	if pinned == nil {
		return out, nil, nil
	}
	return out, pinned.release, nil
}

// serveBarrierEnter folds a barrier arrival into this node's episode
// state. In the flat topology only node 0 receives enters; in the tree
// topology every interior node folds its children's subtree aggregates
// (Entered/HotSets non-empty) before forwarding its own aggregate one
// edge up. The fold is idempotent: entered ids dedup through the
// entered set and notices through the have map, so re-delivered enters
// (transport retries, whole-phase barrier retries) — or aggregates that
// grew between attempts — fold exactly-once per item per episode.
func (n *node) serveBarrierEnter(req *msg.BarrierEnter) (msg.Message, error) {
	n.c.barrierMu.Lock()
	defer n.c.barrierMu.Unlock()
	b := &n.c.barriers[n.id]
	if req.Episode != b.episode {
		return &msg.Ack{}, nil // late duplicate of a completed episode
	}
	if b.entered == nil {
		b.entered = make(map[int32]bool)
	}
	if b.have == nil {
		b.have = make(map[[3]int32]bool)
	}
	if b.hot == nil {
		b.hot = make(map[int32][]int32)
	}
	ids := req.Entered
	if len(ids) == 0 {
		ids = []int32{req.Node}
	}
	for _, id := range ids {
		b.entered[id] = true
	}
	b.lam = maxI32(b.lam, req.Lam)
	if len(req.Hot) > 0 {
		b.hot[req.Node] = req.Hot
	}
	for _, hs := range req.HotSets {
		if len(hs.Pages) > 0 {
			b.hot[hs.Node] = hs.Pages
		}
	}
	for _, nt := range req.Notices {
		k := [3]int32{nt.Page, nt.Writer, nt.Interval}
		if b.have[k] {
			continue
		}
		b.have[k] = true
		b.notices = append(b.notices, nt)
	}
	return &msg.Ack{}, nil
}

func (n *node) serveBarrierRelease(req *msg.BarrierRelease) (msg.Message, error) {
	n.c.probeBarrierReleased(n.id, req.Episode)
	n.c.probeNoticesDelivered(n.id, ViaBarrier, req.Notices)
	n.bumpLamport(req.Lam)
	for _, nt := range req.Notices {
		n.addPending(nt)
	}
	n.lockSync()
	for _, nt := range req.Notices {
		if nt.Interval > n.seen[nt.Writer] {
			n.seen[nt.Writer] = nt.Interval
		}
	}
	n.mu.Unlock()
	// Home migration decisions apply while application threads are
	// parked and no page requests are in flight; idempotent (a re-
	// delivered release stores the same homes).
	for _, ph := range req.Homes {
		if int(ph.Page) >= 0 && int(ph.Page) < len(n.homes) {
			n.homes[ph.Page].Store(ph.Home)
		}
	}
	if len(req.Push) > 0 {
		cost, pushed, err := n.applyPush(req.Push)
		if err != nil {
			return nil, err
		}
		n.lockSync()
		n.pushCost += cost
		n.pushedEpoch += pushed
		n.mu.Unlock()
	}
	// Store the release for the tree fan-out: this node relays the
	// episode's payload (and the Relay entries for its subtree) to its
	// children from this copy.
	n.c.barrierMu.Lock()
	if b := &n.c.barriers[n.id]; b.episode == req.Episode {
		b.rel = req
	}
	n.c.barrierMu.Unlock()
	// The barrier flushed all pre-barrier notices cluster-wide, so the
	// managed lock log, the per-manager release high-water marks, the
	// confirmed grant-log positions, and the grant-forwarding release
	// marks restart together.
	n.lockMgrMu.Lock()
	n.locks.reset()
	n.lockMgrMu.Unlock()
	n.lockSync()
	for i := range n.sentKnown {
		n.sentKnown[i] = 0
	}
	for i := range n.lockPos {
		n.lockPos[i] = 0
	}
	n.lockMark = make(map[int32]int)
	n.mu.Unlock()
	return &msg.Ack{}, nil
}

// serveLockAcquire grants a lock with the suffix of the shared notice log
// the requester has not confirmed receiving. It is idempotent: the start
// position comes from the request (the requester's last applied grant),
// so a retried acquire — e.g. after a dropped grant reply — is re-served
// the identical suffix, and the requester's notice application dedups.
func (n *node) serveLockAcquire(req *msg.LockAcquire) (msg.Message, error) {
	n.lockMgrMu.Lock()
	defer n.lockMgrMu.Unlock()
	ml := n.locks
	if n.c.cfg.HomeMigration {
		// Grant forwarding: instead of shipping history through the
		// manager, the grant names the lock's last releaser; the
		// acquirer pulls the causal history from it directly
		// (LockPull). -1 means no release since the last barrier —
		// nothing to inherit. A pure read: retried acquires are served
		// identically.
		holder := int32(-1)
		if h, ok := ml.holder[req.Lock]; ok {
			holder = h
		}
		return &msg.LockGrant{Lock: req.Lock, Lam: ml.lockLam[req.Lock], Holder: holder}, nil
	}
	grant := &msg.LockGrant{Lock: req.Lock, Lam: ml.lockLam[req.Lock], Pos: int32(len(ml.log)), Holder: -1}
	start := int(req.Pos)
	if start < 0 || start > len(ml.log) {
		// Defensive clamp: positions from before the log's barrier reset
		// cannot occur (both ends reset together), but never slice past
		// the log.
		start = 0
	}
	for _, nt := range ml.log[start:] {
		if int(nt.Writer) == int(req.Node) {
			continue
		}
		if len(req.Seen) > int(nt.Writer) && nt.Interval <= req.Seen[nt.Writer] {
			continue
		}
		grant.Notices = append(grant.Notices, nt)
	}
	return grant, nil
}

func (n *node) serveLockRelease(req *msg.LockRelease) (msg.Message, error) {
	n.lockMgrMu.Lock()
	defer n.lockMgrMu.Unlock()
	ml := n.locks
	ml.add(req.Notices)
	ml.lockLam[req.Lock] = maxI32(ml.lockLam[req.Lock], req.Lam)
	if n.c.cfg.HomeMigration {
		// Grant forwarding: register the releaser as the lock's
		// holder; the next grant redirects its acquirer here.
		// Idempotent — a retried release re-registers the same node.
		ml.holder[req.Lock] = req.Node
	}
	return &msg.Ack{}, nil
}

// serveLockPull answers a grant-forwarding history pull: the manager
// named this node as the lock's last releaser, and the acquirer asks
// for the causal history that release covered. The reply serves the
// prefix of known snapshotted at the release (lockMark), filtered by
// the requester's seen vector. A pure read — a transport retry is
// re-served the identical suffix and the requester's pending-notice
// dedup absorbs it. A pull arriving after a barrier cleared the mark
// returns an empty grant: the barrier already delivered everything.
func (n *node) serveLockPull(req *msg.LockPull) (msg.Message, error) {
	n.lockSync()
	mark := n.lockMark[req.Lock]
	if mark > len(n.known) {
		mark = len(n.known)
	}
	history := append([]msg.Notice(nil), n.known[:mark]...)
	n.mu.Unlock()
	grant := &msg.LockGrant{Lock: req.Lock, Lam: n.lamport.Load(), Holder: int32(n.id)}
	for _, nt := range history {
		if int(nt.Writer) == int(req.Node) {
			continue
		}
		if n.c.cfg.Mutation == MutationNoTransitivity && int(nt.Writer) != n.id {
			// Test-only bug: forward only this node's own notices,
			// dropping the received history a correct holder must
			// propagate (lost transitivity).
			continue
		}
		if len(req.Seen) > int(nt.Writer) && nt.Interval <= req.Seen[nt.Writer] {
			continue
		}
		grant.Notices = append(grant.Notices, nt)
	}
	return grant, nil
}

// serveGCCollect drops stored diffs for the page and, on non-home
// nodes, invalidates the copy outright (replicas of collected pages are
// invalidated rather than updated — paper §2). Dropping releases the
// store's reference on each diff; bytes still pinned by an in-flight
// serve are recycled when that serve's encode finishes.
func (n *node) serveGCCollect(req *msg.GCCollect) (msg.Message, error) {
	p := vm.PageID(req.Page)
	if n.c.cfg.FaultTolerance {
		// The replicated diff store mirrors the primaries' diffs; a
		// collect retires the whole page's history there too.
		n.replMu.Lock()
		for _, byPage := range n.replDiffs {
			delete(byPage, p)
		}
		n.replMu.Unlock()
	}
	sh := n.lockShard(p)
	defer sh.mu.Unlock()
	if store, ok := sh.diffs[p]; ok {
		var dropped int64
		for _, d := range store {
			dropped += int64(len(d.b))
			d.release()
		}
		n.diffBytes.Add(-dropped)
		delete(sh.diffs, p)
	}
	if n.effHome(p) != n.id &&
		!(n.c.cfg.FaultTolerance && n.id == n.c.aliveSucc(n.effHome(p))) {
		// Under fault tolerance the home's ring standby keeps its
		// (just-refreshed) copy: a home crash must always find a
		// current base image at the failover target.
		st := &n.pages[p]
		if st.dirty {
			return nil, fmt.Errorf("dsm: GC of page %d with open twin on node %d", p, n.id)
		}
		if st.prefetched {
			st.prefetched = false
			n.c.stats.PrefetchWasted.Add(1)
		}
		st.hasCopy = false
		st.pending = nil
		st.appliedVT = nil
		n.as.SetProt(p, vm.ProtNone)
		n.c.probePageInvalidated(n.id, p)
	}
	return &msg.Ack{}, nil
}

func maxI32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
