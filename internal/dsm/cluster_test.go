package dsm

import (
	"testing"

	"actdsm/internal/memlayout"
	"actdsm/internal/sim"
	"actdsm/internal/vm"
)

func newTestCluster(t *testing.T, nodes, pages int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: nodes, Pages: pages})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// wf32 writes x at float32 index idx of the segment via a span on node.
func wf32(t *testing.T, c *Cluster, node, tid, idx int, x float32) {
	t.Helper()
	b, _, err := c.Span(node, tid, idx*4, 4, vm.Write)
	if err != nil {
		t.Fatal(err)
	}
	memlayout.ViewF32(b).Set(0, x)
}

// rf32 reads float32 index idx via a span on node.
func rf32(t *testing.T, c *Cluster, node, tid, idx int) float32 {
	t.Helper()
	b, _, err := c.Span(node, tid, idx*4, 4, vm.Read)
	if err != nil {
		t.Fatal(err)
	}
	return memlayout.ViewF32(b).Get(0)
}

func barrier(t *testing.T, c *Cluster) {
	t.Helper()
	if _, err := c.Barrier(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, Pages: 1}); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	if _, err := New(Config{Nodes: 1, Pages: 0}); err == nil {
		t.Fatal("expected error for zero pages")
	}
}

func TestSpanBounds(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	if _, _, err := c.Span(0, 0, -1, 4, vm.Read); err == nil {
		t.Fatal("expected error for negative offset")
	}
	if _, _, err := c.Span(0, 0, 0, 0, vm.Read); err == nil {
		t.Fatal("expected error for zero size")
	}
	if _, _, err := c.Span(0, 0, 2*memlayout.PageSize-2, 4, vm.Read); err == nil {
		t.Fatal("expected error for span past end")
	}
}

func TestLocalWriteReadBack(t *testing.T) {
	c := newTestCluster(t, 2, 4)
	wf32(t, c, 0, 0, 10, 3.25)
	if got := rf32(t, c, 0, 0, 10); got != 3.25 {
		t.Fatalf("read back %v", got)
	}
}

func TestBarrierPropagatesWrites(t *testing.T) {
	c := newTestCluster(t, 2, 4)
	// Page 1's manager is node 1; write from node 0 so the write
	// itself is a remote miss and the diff must travel.
	wf32(t, c, 0, 0, 1024+5, 42.5) // float index 1029 is on page 1
	barrier(t, c)
	if got := rf32(t, c, 1, 8, 1024+5); got != 42.5 {
		t.Fatalf("node 1 read %v, want 42.5", got)
	}
	s := c.Stats().Snapshot()
	if s.RemoteMisses == 0 {
		t.Fatal("expected remote misses")
	}
	if s.Barriers != 1 {
		t.Fatalf("Barriers = %d", s.Barriers)
	}
}

func TestMultiWriterSamePage(t *testing.T) {
	c := newTestCluster(t, 3, 2)
	// Nodes 0 and 1 write disjoint words of page 0 in the same
	// interval; after the barrier node 2 must see both.
	wf32(t, c, 0, 0, 0, 1.0)
	wf32(t, c, 1, 8, 100, 2.0)
	barrier(t, c)
	if got := rf32(t, c, 2, 16, 0); got != 1.0 {
		t.Fatalf("word 0 = %v, want 1", got)
	}
	if got := rf32(t, c, 2, 16, 100); got != 2.0 {
		t.Fatalf("word 100 = %v, want 2", got)
	}
	// And the writers see each other's updates.
	if got := rf32(t, c, 0, 0, 100); got != 2.0 {
		t.Fatalf("node 0 sees word 100 = %v", got)
	}
	if got := rf32(t, c, 1, 8, 0); got != 1.0 {
		t.Fatalf("node 1 sees word 0 = %v", got)
	}
}

func TestRepeatedIterationsPingPong(t *testing.T) {
	// SOR-like alternation: node 0 and node 1 take turns updating the
	// same word, reading the other's last value.
	c := newTestCluster(t, 2, 1)
	want := float32(0)
	for iter := 0; iter < 6; iter++ {
		node := iter % 2
		got := rf32(t, c, node, node*8, 3)
		if got != want {
			t.Fatalf("iter %d node %d read %v, want %v", iter, node, got, want)
		}
		want = float32(iter + 1)
		wf32(t, c, node, node*8, 3, want)
		barrier(t, c)
	}
}

func TestLockPropagatesWithoutBarrier(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	const lock = int32(7)
	// Node 0: acquire, increment counter, release.
	if _, err := c.AcquireLock(0, 0, lock); err != nil {
		t.Fatal(err)
	}
	wf32(t, c, 0, 0, 0, 5.0)
	if _, err := c.ReleaseLock(0, 0, lock); err != nil {
		t.Fatal(err)
	}
	// Node 1: acquire the same lock — must observe the write with no
	// intervening barrier.
	if _, err := c.AcquireLock(1, 8, lock); err != nil {
		t.Fatal(err)
	}
	if got := rf32(t, c, 1, 8, 0); got != 5.0 {
		t.Fatalf("node 1 read %v under lock, want 5", got)
	}
	wf32(t, c, 1, 8, 0, 6.0)
	if _, err := c.ReleaseLock(1, 8, lock); err != nil {
		t.Fatal(err)
	}
	// Back to node 0.
	if _, err := c.AcquireLock(0, 0, lock); err != nil {
		t.Fatal(err)
	}
	if got := rf32(t, c, 0, 0, 0); got != 6.0 {
		t.Fatalf("node 0 read %v under lock, want 6", got)
	}
	if _, err := c.ReleaseLock(0, 0, lock); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Snapshot().LockAcquires; got != 3 {
		t.Fatalf("LockAcquires = %d", got)
	}
}

func TestLockCarriesProgramOrderHistory(t *testing.T) {
	// Node 0 writes page A under lock 1, then writes page B under lock
	// 2. Node 1 acquires only lock 2 but must still see the page-A
	// write (program order on node 0 happens-before the release of 2).
	c := newTestCluster(t, 2, 2)
	if _, err := c.AcquireLock(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	wf32(t, c, 0, 0, 0, 11) // page 0
	if _, err := c.ReleaseLock(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AcquireLock(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	wf32(t, c, 0, 0, 1024, 22) // page 1
	if _, err := c.ReleaseLock(0, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AcquireLock(1, 8, 2); err != nil {
		t.Fatal(err)
	}
	if got := rf32(t, c, 1, 8, 1024); got != 22 {
		t.Fatalf("page B = %v, want 22", got)
	}
	if got := rf32(t, c, 1, 8, 0); got != 11 {
		t.Fatalf("page A = %v, want 11 (program-order history)", got)
	}
	if _, err := c.ReleaseLock(1, 8, 2); err != nil {
		t.Fatal(err)
	}
}

func TestGarbageCollection(t *testing.T) {
	c, err := New(Config{Nodes: 2, Pages: 2, GCThresholdBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// Node 0 writes page 1 (manager: node 1): diff stored at node 0.
	wf32(t, nil2t(t, c), 0, 0, 1024, 9)
	barrier(t, c)
	s := c.Stats().Snapshot()
	if s.GCRounds != 1 || s.GCCollections == 0 {
		t.Fatalf("GCRounds=%d GCCollections=%d", s.GCRounds, s.GCCollections)
	}
	if got := c.StoredDiffBytes(); got != 0 {
		t.Fatalf("StoredDiffBytes = %d after GC", got)
	}
	// Non-manager replica (node 0's own copy!) was invalidated; the
	// value must still be readable everywhere via refetch.
	if c.PageProt(0, 1) != vm.ProtNone {
		t.Fatalf("node 0 page 1 prot = %v, want none", c.PageProt(0, 1))
	}
	if got := rf32(t, c, 0, 0, 1024); got != 9 {
		t.Fatalf("node 0 reread %v, want 9", got)
	}
	if got := rf32(t, c, 1, 8, 1024); got != 9 {
		t.Fatalf("node 1 read %v, want 9", got)
	}
}

// nil2t exists to keep wf32's signature simple in the GC test above.
func nil2t(t *testing.T, c *Cluster) *Cluster { t.Helper(); return c }

func TestGCDisabled(t *testing.T) {
	c, err := New(Config{Nodes: 2, Pages: 1, GCThresholdBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	wf32(t, c, 1, 8, 0, 1)
	barrier(t, c)
	if got := c.Stats().Snapshot().GCRounds; got != 0 {
		t.Fatalf("GCRounds = %d with GC disabled", got)
	}
	if c.StoredDiffBytes() == 0 {
		t.Fatal("expected stored diffs with GC disabled")
	}
}

func TestTrackingFaultsCountedAndCharged(t *testing.T) {
	c := newTestCluster(t, 1, 3)
	var seen []vm.PageID
	cost := c.BeginTracking(0, func(tid int, p vm.PageID) { seen = append(seen, p) })
	if cost <= 0 {
		t.Fatal("BeginTracking cost should be positive")
	}
	if !c.Tracking(0) {
		t.Fatal("Tracking(0) = false")
	}
	// Touch pages 0 and 2.
	_, ti, err := c.Span(0, 0, 0, 4, vm.Read)
	if err != nil {
		t.Fatal(err)
	}
	if ti.Overhead < c.Costs().TrackFault {
		t.Fatalf("tracking fault not charged: %+v", ti)
	}
	if _, _, err := c.Span(0, 0, 2*memlayout.PageSize, 4, vm.Read); err != nil {
		t.Fatal(err)
	}
	// Second touch of page 0: no new tracking fault.
	if _, _, err := c.Span(0, 0, 8, 4, vm.Read); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 2 {
		t.Fatalf("tracked pages = %v", seen)
	}
	if got := c.Stats().Snapshot().TrackingFaults; got != 2 {
		t.Fatalf("TrackingFaults = %d", got)
	}
	// Re-arm: page 0 faults again.
	if cost := c.RearmTracking(0); cost <= 0 {
		t.Fatal("RearmTracking cost should be positive")
	}
	if _, _, err := c.Span(0, 1, 0, 4, vm.Read); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("after rearm, tracked = %v", seen)
	}
	c.EndTracking(0)
	if c.Tracking(0) {
		t.Fatal("still tracking after EndTracking")
	}
}

func TestRemoteFaultHook(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	type ev struct {
		node, tid int
		page      vm.PageID
	}
	var events []ev
	c.SetRemoteFaultHook(func(node, tid int, p vm.PageID) {
		events = append(events, ev{node, tid, p})
	})
	// Page 1 managed by node 1; node 0's first read is a remote miss.
	_ = rf32(t, c, 0, 3, 1024)
	if len(events) != 1 || events[0] != (ev{0, 3, 1}) {
		t.Fatalf("events = %+v", events)
	}
	// Second read: no new event.
	_ = rf32(t, c, 0, 3, 1025)
	if len(events) != 1 {
		t.Fatalf("events after warm read = %+v", events)
	}
}

func TestStallChargedOnRemoteMiss(t *testing.T) {
	c := newTestCluster(t, 2, 2)
	_, ti, err := c.Span(0, 0, memlayout.PageSize, 4, vm.Read) // page 1, remote
	if err != nil {
		t.Fatal(err)
	}
	if ti.Stall <= 0 {
		t.Fatalf("remote miss charged no stall: %+v", ti)
	}
	if ti.Overhead < c.Costs().SoftFault {
		t.Fatalf("remote miss charged no fault overhead: %+v", ti)
	}
	// Warm access: free.
	_, ti2, err := c.Span(0, 0, memlayout.PageSize, 4, vm.Read)
	if err != nil {
		t.Fatal(err)
	}
	if ti2 != (sim.ThreadInterval{}) {
		t.Fatalf("warm access charged %+v", ti2)
	}
}

func TestDeterministicStats(t *testing.T) {
	run := func() Snapshot {
		c, err := New(Config{Nodes: 4, Pages: 8})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		for iter := 0; iter < 3; iter++ {
			for node := 0; node < 4; node++ {
				for p := 0; p < 8; p++ {
					wf32(t, c, node, node, p*1024+node*16, float32(iter*node+p))
				}
			}
			if _, err := c.Barrier(); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats().Snapshot()
	}
	a, b := run(), run()
	if a.Counters() != b.Counters() {
		t.Fatalf("stats differ between identical runs:\n%+v\n%+v", a, b)
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	c, err := New(Config{Nodes: 3, Pages: 3, UseTCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	wf32(t, c, 0, 0, 1024, 7.5)  // page 1 (manager 1), writer 0
	wf32(t, c, 2, 16, 2048, 8.5) // page 2 (manager 2), writer 2
	barrier(t, c)
	if got := rf32(t, c, 1, 8, 1024); got != 7.5 {
		t.Fatalf("tcp: node1 read %v", got)
	}
	if got := rf32(t, c, 0, 0, 2048); got != 8.5 {
		t.Fatalf("tcp: node0 read %v", got)
	}
	if got := c.Stats().Snapshot().BytesTotal; got == 0 {
		t.Fatal("tcp: no bytes accounted")
	}
}

func TestManagerInitialCopies(t *testing.T) {
	c := newTestCluster(t, 4, 8)
	for p := 0; p < 8; p++ {
		for n := 0; n < 4; n++ {
			prot := c.PageProt(n, vm.PageID(p))
			if n == p%4 && prot != vm.ProtRead {
				t.Fatalf("manager %d of page %d: prot %v", n, p, prot)
			}
			if n != p%4 && prot != vm.ProtNone {
				t.Fatalf("non-manager %d of page %d: prot %v", n, p, prot)
			}
		}
	}
}

func TestBytesDiffAccounted(t *testing.T) {
	c := newTestCluster(t, 2, 1)
	wf32(t, c, 1, 8, 0, 1) // node 1 writes page 0 (manager 0) — remote write fault
	barrier(t, c)
	_ = rf32(t, c, 0, 0, 0) // node 0 revalidates via diff fetch
	s := c.Stats().Snapshot()
	if s.BytesDiff == 0 {
		t.Fatal("no diff bytes accounted")
	}
	if s.DiffFetches == 0 {
		t.Fatal("no diff fetches accounted")
	}
	if s.BytesDiff >= s.BytesTotal {
		t.Fatalf("BytesDiff %d >= BytesTotal %d", s.BytesDiff, s.BytesTotal)
	}
}
