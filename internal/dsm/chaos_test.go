package dsm

import (
	"sync/atomic"
	"testing"
	"time"

	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/transport"
)

// chaosWorkload drives a deterministic multi-round write/barrier/read
// pattern and verifies every node's final view against a plain shadow
// array. It is the shared workload for the fault-injection tests: the
// same sequence runs with and without chaos, so protocol counters are
// directly comparable.
func chaosWorkload(t *testing.T, c *Cluster, nodes, npages int) {
	t.Helper()
	words := npages * memlayout.PageSize / 4
	shadow := make([]float32, words)
	for round := 0; round < 4; round++ {
		for node := 0; node < nodes; node++ {
			for k := 0; k < 8; k++ {
				w := (node*17 + k*29 + round*53) % words
				w -= w % nodes // disjoint per-node lanes within an interval
				w += node
				if w >= words {
					continue
				}
				val := float32(round*1000 + node*100 + k)
				wf32(t, c, node, node, w, val)
				shadow[w] = val
			}
		}
		barrier(t, c)
	}
	for node := 0; node < nodes; node++ {
		for w := 0; w < words; w += 13 {
			if got := rf32(t, c, node, node, w); got != shadow[w] {
				t.Fatalf("node %d word %d = %v, want %v", node, w, got, shadow[w])
			}
		}
	}
	if err := c.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosBarrierGCDedup is the resilience acceptance test: a chaos plan
// drops one barrier-enter request, one barrier-enter reply, one GC-collect
// request, and one GC-collect reply (the dropped replies force the
// receiver to execute the request twice once the transport retries). The
// episode must complete via transport-level retry with the final page
// contents identical to the shadow and every protocol counter identical
// to a chaos-free reference run — i.e. no write notice or GC collection
// was double-counted. Runs over both the Local and TCP transports.
func TestChaosBarrierGCDedup(t *testing.T) {
	const nodes, npages = 3, 4
	for _, useTCP := range []bool{false, true} {
		name := "local"
		if useTCP {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			run := func(chaos *transport.ChaosOptions) Snapshot {
				c, err := New(Config{
					Nodes:            nodes,
					Pages:            npages,
					GCThresholdBytes: 1, // GC every barrier with stored diffs
					UseTCP:           useTCP,
					Transport: transport.Options{
						MaxAttempts: 6,
						BackoffBase: time.Microsecond,
					},
					Chaos: chaos,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer func() { _ = c.Close() }()
				chaosWorkload(t, c, nodes, npages)
				return c.Stats().Snapshot()
			}

			clean := run(nil)
			if clean.GCRounds == 0 {
				t.Fatal("workload never triggered GC; test proves nothing")
			}

			// Inject each fault exactly once, keyed on the message kind
			// (the payload's first byte).
			var enterReq, enterReply, gcReq, gcReply atomic.Bool
			chaotic := run(&transport.ChaosOptions{
				Plan: func(from, to int, payload []byte, call int64) transport.Fault {
					if len(payload) == 0 {
						return transport.FaultNone
					}
					switch msg.Kind(payload[0]) {
					case msg.KindBarrierEnter:
						if enterReq.CompareAndSwap(false, true) {
							return transport.FaultDropRequest
						}
						if enterReply.CompareAndSwap(false, true) {
							return transport.FaultDropReply
						}
					case msg.KindGCCollect:
						if gcReq.CompareAndSwap(false, true) {
							return transport.FaultDropRequest
						}
						if gcReply.CompareAndSwap(false, true) {
							return transport.FaultDropReply
						}
					}
					return transport.FaultNone
				},
			})
			if !enterReq.Load() || !enterReply.Load() || !gcReq.Load() || !gcReply.Load() {
				t.Fatalf("not all planned faults fired: enter req/reply %v/%v, gc req/reply %v/%v",
					enterReq.Load(), enterReply.Load(), gcReq.Load(), gcReply.Load())
			}

			// Exactly-once accounting: despite dropped messages, retries,
			// and double-executed requests, every protocol counter matches
			// the chaos-free run.
			if got, want := chaotic.Counters(), clean.Counters(); got != want {
				t.Fatalf("counters diverge under chaos:\nchaos: %+v\nclean: %+v", got, want)
			}

			// The retries were attributed to the right message kinds.
			retries := make(map[string]int64)
			for _, cs := range chaotic.Calls {
				retries[cs.Kind] = cs.Retries
			}
			if retries["BarrierEnter"] < 2 {
				t.Fatalf("BarrierEnter retries = %d, want >= 2", retries["BarrierEnter"])
			}
			if retries["GCCollect"] < 2 {
				t.Fatalf("GCCollect retries = %d, want >= 2", retries["GCCollect"])
			}
		})
	}
}

// TestBarrierPhaseRetryDedup exercises the phase-level retry path: with
// transport retries disabled, a dropped barrier-enter reply fails the
// whole enter fan-in, and Config.BarrierRetries re-broadcasts it. The
// manager has already executed the first delivery, so the re-sent enters
// must be deduplicated — the release carries each notice once and the
// protocol counters (minus message traffic, which legitimately grows with
// the re-broadcast) match a fault-free run.
func TestBarrierPhaseRetryDedup(t *testing.T) {
	const nodes, npages = 3, 3
	run := func(chaos *transport.ChaosOptions, barrierRetries int) Snapshot {
		c, err := New(Config{
			Nodes:            nodes,
			Pages:            npages,
			GCThresholdBytes: -1, // isolate the barrier path
			BarrierRetries:   barrierRetries,
			Chaos:            chaos,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		chaosWorkload(t, c, nodes, npages)
		return c.Stats().Snapshot()
	}

	clean := run(nil, 0)

	var dropped atomic.Bool
	chaotic := run(&transport.ChaosOptions{
		Plan: func(from, to int, payload []byte, call int64) transport.Fault {
			if len(payload) > 0 && msg.Kind(payload[0]) == msg.KindBarrierEnter &&
				dropped.CompareAndSwap(false, true) {
				// The manager executes the enter, but the caller sees an
				// error: the phase fails after partial delivery.
				return transport.FaultDropReply
			}
			return transport.FaultNone
		},
	}, 2)
	if !dropped.Load() {
		t.Fatal("planned fault never fired")
	}
	if chaotic.BarrierRetries == 0 {
		t.Fatal("no phase-level retry recorded")
	}

	// The re-broadcast re-sends every notice; dedup keeps all protocol
	// counters exactly-once. Message and byte counts legitimately differ
	// (the retried phase is re-sent on the wire), as does the retry
	// counter itself.
	got, want := chaotic.Counters(), clean.Counters()
	got.Messages, want.Messages = 0, 0
	got.BytesTotal, want.BytesTotal = 0, 0
	got.BarrierRetries, want.BarrierRetries = 0, 0
	if got != want {
		t.Fatalf("counters diverge after phase retry:\nchaos: %+v\nclean: %+v", got, want)
	}
}

// TestChaosLockGrantRetry pins the lock-acquire retry fix: the grant's
// notice-log high-water mark is confirmed by the requester (echoed in the
// next acquire as LockAcquire.Pos) rather than advanced by the manager
// when serving. With a manager-side mark, dropping a grant reply and
// retrying the acquire skips the notices the requester never received.
//
// The scenario makes the loss observable: node 1 holds a *valid* cached
// copy of the page when node 0 updates it under the lock, so the only way
// node 1 learns of the update is the write notice carried by its own
// grant. If the retried acquire is served an empty log suffix, node 1's
// copy is never invalidated and it reads the stale value.
func TestChaosLockGrantRetry(t *testing.T) {
	const nodes, npages = 3, 1
	const lock = 2 // managed by node 2: every acquire below crosses the wire
	var dropped atomic.Bool
	c, err := New(Config{
		Nodes:            nodes,
		Pages:            npages,
		GCThresholdBytes: -1,
		Transport: transport.Options{
			MaxAttempts: 4,
			BackoffBase: time.Microsecond,
		},
		Chaos: &transport.ChaosOptions{
			Plan: func(from, to int, payload []byte, call int64) transport.Fault {
				// Drop the grant reply of node 1's first acquire: the
				// manager executes it, the requester retries.
				if from == 1 && len(payload) > 0 &&
					msg.Kind(payload[0]) == msg.KindLockAcquire &&
					dropped.CompareAndSwap(false, true) {
					return transport.FaultDropReply
				}
				return transport.FaultNone
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	// Node 1 caches page 0 while it is still all zeros; the copy stays
	// valid until a write notice arrives.
	if got := rf32(t, c, 1, 1, 0); got != 0 {
		t.Fatalf("initial read = %v, want 0", got)
	}

	// Node 0 updates word 0 under the lock; its release ships the write
	// notice to the manager's shared log. Nothing is broadcast — lazily,
	// only the next grant carries it.
	if _, err := c.AcquireLock(0, 0, lock); err != nil {
		t.Fatal(err)
	}
	wf32(t, c, 0, 0, 0, 42)
	if _, err := c.ReleaseLock(0, 0, lock); err != nil {
		t.Fatal(err)
	}

	// Node 1 takes the lock. The grant reply is dropped and the transport
	// retries the acquire; the re-served grant must carry node 0's notice
	// again, since the first one never arrived.
	if _, err := c.AcquireLock(1, 1, lock); err != nil {
		t.Fatal(err)
	}
	if got := rf32(t, c, 1, 1, 0); got != 42 {
		t.Fatalf("node 1 read %v after lock hand-off, want 42 — "+
			"a retried acquire lost its grant notices", got)
	}
	if _, err := c.ReleaseLock(1, 1, lock); err != nil {
		t.Fatal(err)
	}

	barrier(t, c)
	if err := c.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	if !dropped.Load() {
		t.Fatal("planned fault never fired")
	}
	var lockRetries int64
	for _, cs := range c.Stats().Snapshot().Calls {
		if cs.Kind == "LockAcquire" {
			lockRetries = cs.Retries
		}
	}
	if lockRetries == 0 {
		t.Fatal("no LockAcquire retries recorded; the fault plan never fired")
	}
}

// TestChaosRandomizedRecovery soaks the full stack with probabilistic
// faults under a generous retry budget: the workload must still complete
// with correct contents and pass the coherence check, over both
// transports. MaxConsecutive keeps the soak deadline-robust: no single
// call can have all MaxAttempts attempts faulted, so an unlucky stretch
// of the random stream can slow the run but never wedge it, for every
// seed rather than just the committed one.
func TestChaosRandomizedRecovery(t *testing.T) {
	const nodes, npages = 3, 3
	for _, useTCP := range []bool{false, true} {
		name := "local"
		if useTCP {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			c, err := New(Config{
				Nodes:            nodes,
				Pages:            npages,
				GCThresholdBytes: 1,
				UseTCP:           useTCP,
				Transport: transport.Options{
					MaxAttempts: 12,
					BackoffBase: time.Microsecond,
				},
				Chaos: &transport.ChaosOptions{
					Seed:            99,
					DropRequestProb: 0.10,
					DropReplyProb:   0.05,
					DuplicateProb:   0.05,
					MaxConsecutive:  8,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = c.Close() }()
			chaosWorkload(t, c, nodes, npages)
			var retries int64
			for _, cs := range c.Stats().Snapshot().Calls {
				retries += cs.Retries
			}
			if retries == 0 {
				t.Fatal("chaos injected nothing; test proves nothing")
			}
		})
	}
}
