package dsm

// Hot-path service benchmark harness: many peers hammering one node with
// the request mix the sharded locking exists to parallelize. This is a
// wall-clock benchmark, not a virtual-time experiment: it measures how
// fast a node's serve path runs on real hardware, which is exactly the
// overhead the paper's "tracking is cheap online" argument depends on.
//
// The harness lives in the dsm package (not a _test file) so both the Go
// benchmarks (hotpath_bench_test.go) and the actbench "hotpath" section
// (internal/experiments/hotpath.go, emitting BENCH_hotpath.json) drive
// the identical workload. The interesting comparison is
// ServiceShards: 1 — a single node-wide page lock, the pre-sharding
// behaviour — against the sharded default.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/vm"
)

// HotpathOptions configures one HotpathBench run. The zero value of any
// field selects a default sized for a sub-second run.
type HotpathOptions struct {
	// Nodes is the cluster size (default 4; minimum 2 — the serving
	// node plus at least one peer).
	Nodes int
	// Pages is the shared segment size in pages (default 256; rounded
	// up to a multiple of Nodes so every node manages the same number
	// of pages).
	Pages int
	// Peers is the number of hammer goroutines issuing requests
	// against node 0 (default 8). Peers rotate over the requester
	// node ids 1..Nodes-1.
	Peers int
	// Ops is the total number of requests across all peers
	// (default 20000).
	Ops int
	// PageReqEvery makes every k-th request a full PageRequest (which
	// write-locks the page's shard and copies a page image) instead of
	// a DiffRequest (a read-locked serve). Default 4; negative
	// disables page requests entirely.
	PageReqEvery int
	// ServiceShards is passed through to Config.ServiceShards: 1 is
	// the single-lock baseline, 0 the sharded default.
	ServiceShards int
	// ServiceHoldUS, when positive, makes every serve hold its page's
	// shard lock for this many extra microseconds, modeling the
	// per-request protocol work (mprotect syscalls, page copies) a real
	// node performs under the lock. With the hold, the measured
	// throughput ratio reflects how much of the service schedule the
	// locking scheme lets overlap — the property sharding exists for —
	// rather than the benchmark host's core count, so the BENCH gate is
	// stable on single-core CI runners. 0 disables the hold (pure
	// wall-clock ns/op, used by the Go benchmarks).
	ServiceHoldUS int
}

func (o HotpathOptions) withDefaults() HotpathOptions {
	if o.Nodes == 0 {
		o.Nodes = 4
	}
	if o.Pages == 0 {
		o.Pages = 256
	}
	if r := o.Pages % o.Nodes; r != 0 {
		o.Pages += o.Nodes - r
	}
	if o.Peers == 0 {
		o.Peers = 8
	}
	if o.Ops == 0 {
		o.Ops = 20000
	}
	if o.PageReqEvery == 0 {
		o.PageReqEvery = 4
	}
	return o
}

// HotpathResult is one HotpathBench measurement.
type HotpathResult struct {
	// Shards is the effective shard count (after rounding).
	Shards int `json:"shards"`
	// Peers and Ops echo the workload shape.
	Peers int `json:"peers"`
	Ops   int `json:"ops"`
	// ElapsedMS is the wall-clock time of the hammer phase.
	ElapsedMS float64 `json:"elapsed_ms"`
	// OpsPerSec is the aggregate serve throughput.
	OpsPerSec float64 `json:"ops_per_sec"`
	// ShardContention and SyncContention are the node-side contended
	// lock acquisition counts for the run (see Stats).
	ShardContention int64 `json:"shard_contention"`
	SyncContention  int64 `json:"sync_contention"`
}

// newHotpathCluster builds a cluster for the hot-path workload and seeds
// node 0's diff store: one stored diff (interval 1) for every page, so
// DiffRequests always hit. GC is disabled so the store survives the run.
func newHotpathCluster(o HotpathOptions) (*Cluster, error) {
	c, err := New(Config{
		Nodes:            o.Nodes,
		Pages:            o.Pages,
		ServiceShards:    o.ServiceShards,
		GCThresholdBytes: -1,
	})
	if err != nil {
		return nil, err
	}
	c.serviceHold = time.Duration(o.ServiceHoldUS) * time.Microsecond
	// Build one representative diff: a page with a few dirty words.
	twin := make([]byte, memlayout.PageSize)
	cur := make([]byte, memlayout.PageSize)
	for w := 0; w < 16; w++ {
		cur[w*128] = byte(w + 1)
	}
	df := MakeDiff(twin, cur)
	n := c.nodes[0]
	for p := 0; p < o.Pages; p++ {
		sh := n.shard(vm.PageID(p))
		sh.diffs[vm.PageID(p)] = map[int32]*diffRef{1: newDiffRef(append([]byte(nil), df...))}
	}
	return c, nil
}

// holdForBench parks the calling goroutine for the cluster's configured
// service hold; the caller keeps its shard lock held across the park.
// Production clusters have serviceHold == 0, so this is one predictable
// branch on the serve path.
func (n *node) holdForBench() {
	if d := n.c.serviceHold; d > 0 {
		time.Sleep(d)
	}
}

// hotpathOp issues the i-th request of worker w against node 0: a
// DiffRequest for a page striding across shards, or (every
// PageReqEvery-th op) a PageRequest for a page node 0 manages.
func (c *Cluster) hotpathOp(o HotpathOptions, w, i int) error {
	from := 1 + w%(c.cfg.Nodes-1)
	if o.PageReqEvery > 0 && i%o.PageReqEvery == 0 {
		// Pages is a multiple of Nodes, so p is always manager-0 owned.
		p := c.cfg.Nodes * (i % (c.cfg.Pages / c.cfg.Nodes))
		_, _, err := c.call(from, 0, &msg.PageRequest{From: int32(from), Page: int32(p)})
		return err
	}
	p := (w*37 + i) % c.cfg.Pages
	_, _, err := c.call(from, 0, &msg.DiffRequest{From: int32(from), Page: int32(p), Intervals: []int32{1}})
	return err
}

// HotpathBench runs the multi-peer hammer workload once and reports the
// aggregate throughput. Peers pull op indices from a shared counter, so
// the load stays balanced regardless of scheduling.
func HotpathBench(o HotpathOptions) (HotpathResult, error) {
	o = o.withDefaults()
	if o.Nodes < 2 {
		return HotpathResult{}, fmt.Errorf("dsm: hotpath needs at least 2 nodes, got %d", o.Nodes)
	}
	c, err := newHotpathCluster(o)
	if err != nil {
		return HotpathResult{}, err
	}
	defer func() { _ = c.Close() }()

	// Short warm-up primes the buffer pools and the scheduler.
	for i := 0; i < 128; i++ {
		if err := c.hotpathOp(o, i%o.Peers, i); err != nil {
			return HotpathResult{}, err
		}
	}

	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	start := time.Now()
	for w := 0; w < o.Peers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= o.Ops {
					return
				}
				if err := c.hotpathOp(o, w, i); err != nil {
					errOnce.Do(func() { runErr = err })
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if runErr != nil {
		return HotpathResult{}, runErr
	}
	return HotpathResult{
		Shards:          c.shardCount,
		Peers:           o.Peers,
		Ops:             o.Ops,
		ElapsedMS:       float64(elapsed.Nanoseconds()) / 1e6,
		OpsPerSec:       float64(o.Ops) / elapsed.Seconds(),
		ShardContention: c.stats.ShardContention.Load(),
		SyncContention:  c.stats.SyncContention.Load(),
	}, nil
}
