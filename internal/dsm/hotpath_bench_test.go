package dsm

// Hot-path microbenchmarks. BenchmarkNodeService is the headline number
// for the sharded-locking work: one node served by many peers, compared
// across shard counts (shards=1 is the pre-sharding single-lock
// baseline). BENCH_hotpath.json pins the same workload's throughput in
// CI through the actbench "hotpath" section.
//
// Run with:
//
//	go test -bench 'NodeService|ParallelDiffServe|CloseInterval' -benchmem ./internal/dsm

import (
	"fmt"
	"sync/atomic"
	"testing"

	"actdsm/internal/memlayout"
	"actdsm/internal/msg"
	"actdsm/internal/vm"
)

// BenchmarkNodeService measures the aggregate serve throughput of one
// node hammered by concurrent peers with the mixed hot-path workload
// (3:1 diff serves to full-page serves), across shard counts.
func BenchmarkNodeService(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			o := HotpathOptions{ServiceShards: shards}.withDefaults()
			c, err := newHotpathCluster(o)
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = c.Close() }()
			var idx atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := int(idx.Add(1)) - 1
				i := 0
				for pb.Next() {
					if err := c.hotpathOp(o, w, i); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
		})
	}
}

// BenchmarkParallelDiffServe isolates the read side: every request is a
// DiffRequest, served under the shard's read lock. With one shard the
// read lock is still shared, so this measures RWMutex read-side overhead
// and the pooled encode/decode path rather than serialization.
func BenchmarkParallelDiffServe(b *testing.B) {
	o := HotpathOptions{PageReqEvery: -1}.withDefaults()
	c, err := newHotpathCluster(o)
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	var idx atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(idx.Add(1)) - 1
		i := 0
		for pb.Next() {
			if err := c.hotpathOp(o, w, i); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkCloseInterval measures the write-fault + interval-close cycle
// on one node: a Span write dirties a page (creating a pooled twin), and
// closeInterval diffs it against the twin, stores the diff, and recycles
// the twin. This is the diff-pipeline allocation path the page-buffer
// pool exists for.
func BenchmarkCloseInterval(b *testing.B) {
	c, err := New(Config{Nodes: 2, Pages: 64, GCThresholdBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := i % 32
		if _, _, err := c.Span(0, 0, p*memlayout.PageSize, 8, vm.Write); err != nil {
			b.Fatal(err)
		}
		c.nodes[0].closeInterval()
	}
}

// TestHotpathBenchSmoke keeps the harness honest under plain `go test`:
// a tiny run must complete without error for both the single-lock
// baseline and the sharded default, and report a sane throughput.
func TestHotpathBenchSmoke(t *testing.T) {
	for _, shards := range []int{1, 0} {
		r, err := HotpathBench(HotpathOptions{Ops: 512, ServiceShards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if r.Ops != 512 || r.OpsPerSec <= 0 {
			t.Fatalf("shards=%d: implausible result %+v", shards, r)
		}
		want := 16
		if shards == 1 {
			want = 1
		}
		if r.Shards != want {
			t.Fatalf("shards=%d: effective shard count %d, want %d", shards, r.Shards, want)
		}
	}
}

// TestHotpathServesMatch pins the harness's protocol behaviour: a diff
// serve through the harness returns the seeded diff, and a page serve
// returns a full page image.
func TestHotpathServesMatch(t *testing.T) {
	o := HotpathOptions{}.withDefaults()
	c, err := newHotpathCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	reply, _, err := c.call(1, 0, &msg.DiffRequest{From: 1, Page: 7, Intervals: []int32{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	dr := reply.(*msg.DiffReply)
	if len(dr.Diffs) != 2 || dr.Diffs[0] == nil || dr.Diffs[1] != nil {
		t.Fatalf("diff serve: want seeded interval 1 only, got %v", dr.Diffs)
	}
	reply, _, err = c.call(1, 0, &msg.PageRequest{From: 1, Page: int32(o.Nodes)})
	if err != nil {
		t.Fatal(err)
	}
	pr := reply.(*msg.PageReply)
	if len(pr.Data) != len(c.nodes[0].pageData(vm.PageID(o.Nodes))) {
		t.Fatalf("page serve: got %d bytes", len(pr.Data))
	}
}
