package dsm

import (
	"bytes"
	"testing"

	"actdsm/internal/memlayout"
)

// FuzzApplyDiff checks the diff applier never panics or writes outside
// the page for arbitrary diff bytes.
func FuzzApplyDiff(f *testing.F) {
	twin := make([]byte, memlayout.PageSize)
	cur := make([]byte, memlayout.PageSize)
	cur[0], cur[100], cur[4095] = 1, 2, 3
	f.Add(MakeDiff(twin, cur))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 4, 0, 1, 2, 3, 4})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, diff []byte) {
		buf := make([]byte, memlayout.PageSize+64)
		for i := range buf {
			buf[i] = 0xAA
		}
		page := buf[32 : 32+memlayout.PageSize]
		_ = ApplyDiff(page, diff)
		// Guard bytes on either side must be untouched.
		for i := 0; i < 32; i++ {
			if buf[i] != 0xAA || buf[len(buf)-1-i] != 0xAA {
				t.Fatalf("ApplyDiff wrote outside the page")
			}
		}
	})
}

// FuzzDiffRoundTrip checks MakeDiff/ApplyDiff reconstruct arbitrary page
// mutations exactly.
func FuzzDiffRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3}, []byte{4, 5, 6})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		twin := make([]byte, memlayout.PageSize)
		cur := make([]byte, memlayout.PageSize)
		copy(twin, a)
		copy(cur, twin)
		// Apply b as a sparse mutation pattern.
		for i := 0; i+1 < len(b); i += 2 {
			off := (int(b[i]) * 17) % memlayout.PageSize
			cur[off] = b[i+1]
		}
		diff := MakeDiff(twin, cur)
		got := make([]byte, memlayout.PageSize)
		copy(got, twin)
		if err := ApplyDiff(got, diff); err != nil {
			t.Fatalf("apply own diff: %v", err)
		}
		if !bytes.Equal(got, cur) {
			t.Fatal("round trip mismatch")
		}
	})
}
