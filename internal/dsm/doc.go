// Package dsm implements a CVM-like page-based software distributed
// shared memory with lazy release consistency and a multi-writer
// protocol: intervals, Lamport-stamped write notices, twins and
// word-granularity diffs, centralized barrier and lock managers that
// piggyback consistency information, and periodic diff garbage
// collection.
//
// The paper's mechanisms (active and passive correlation tracking, thread
// placement) are layered on top in internal/core and internal/placement;
// this package provides the substrate they instrument.
//
// Known simplifications relative to CVM, documented in DESIGN.md:
// diffs are created eagerly at interval end rather than lazily on request,
// and lock grants carry per-lock notice histories (plus the releaser's
// full program-order history since the last barrier) rather than full
// transitive causal histories. Both preserve the behaviour of the
// barrier- and lock-structured applications the paper studies.
//
// # Locking model
//
// The paper's argument is that online tracking is cheap; that only holds
// if the protocol substrate underneath is itself low-overhead. The node
// therefore uses per-concern locking instead of one node-wide mutex
// (ARCHITECTURE.md has the full map):
//
//   - Per-page protocol state (page table entries, protections, segment
//     data, stored diffs) is striped across Config.ServiceShards
//     RWMutex-guarded shards; page p belongs to shard p mod nshards.
//     Independent remote requests — diff fetches, page fetches, notice
//     deliveries, prefetch fills — service in parallel when they touch
//     different shards, and read-only diff serves share a shard's read
//     lock. ServiceShards: 1 restores the old one-big-lock behaviour and
//     is the baseline the hotpath benchmark compares against.
//   - Synchronization-side state (interval counter, seen vector, notice
//     histories, prefetch windows) lives under a small per-node mutex.
//   - The lock-manager log, single-writer ownership table, and
//     virtual-time charge plumbing each have their own leaf mutex, and
//     the Lamport clock and diff-volume gauge are atomics.
//
// No code path holds two of these locks across each other or holds any
// of them across a transport call, so the scheme is deadlock-free by
// construction. Contended acquisitions are counted in
// Stats.ShardContention and Stats.SyncContention (visible through the
// obs metrics endpoint) so shard sizing is observable in production.
//
// The serve path is also allocation-lean: protocol encode/decode uses
// pooled buffers (msg.GetBuf/msg.EncodeTo), page-sized twin and reply
// images come from a page-buffer pool (shard.go), and diff replies alias
// the immutable stored diffs. Steady-state barrier epochs run at ~zero
// allocations per message on the service path; BenchmarkNodeService and
// BENCH_hotpath.json pin the resulting throughput.
package dsm
