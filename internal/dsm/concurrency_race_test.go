package dsm

// Concurrency regression suite for the sharded service path. These tests
// exist to run under the race detector (`make race`, CI's
// `go test -race ./internal/dsm/...`): they drive the request mixes the
// per-shard locking allows to overlap — diff serves, page copies, batch
// fetches, GC collects, lock-manager traffic, and stats snapshots — from
// many goroutines against one node at once, with no synchronization
// beyond what the node itself provides. Any serve path that touches
// shared state outside its shard (or outside the sync/lock-manager
// mutexes) shows up as a race report here long before it corrupts a
// full protocol run.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"actdsm/internal/msg"
)

// raceOpts is the shared workload shape: small enough that the full mix
// finishes quickly under -race, large enough that goroutines genuinely
// overlap inside the serve paths.
func raceOpts(shards int) HotpathOptions {
	return HotpathOptions{
		Nodes:         4,
		Pages:         64,
		Peers:         4,
		Ops:           600,
		ServiceShards: shards,
	}
}

// TestRaceServiceHammer hammers node 0 from concurrent peers with the
// full read-side service mix — DiffRequest, PageRequest, and
// DiffBatchRequest — while a GC goroutine concurrently collects a
// disjoint stripe of pages (dropping their stored diffs under the write
// lock) and a stats goroutine snapshots the counters. Runs under both
// the sharded default and the exclusive single-shard baseline, so both
// locking modes stay race-clean.
func TestRaceServiceHammer(t *testing.T) {
	for _, shards := range []int{0, 1} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			o := raceOpts(shards)
			c, err := newHotpathCluster(o)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = c.Close() }()

			var (
				wg   sync.WaitGroup
				stop atomic.Bool
				fail atomic.Pointer[error]
			)
			report := func(err error) {
				if err != nil {
					fail.CompareAndSwap(nil, &err)
					stop.Store(true)
				}
			}

			// Peer hammer goroutines: rotate over the read-side mix.
			// Pages [0, 48) so the GC stripe below stays disjoint; the
			// serve paths themselves tolerate collected pages (nil diff
			// entries), but keeping the ranges apart means every diff
			// request is also checked for a non-nil hit.
			const diffPages = 48
			for w := 0; w < o.Peers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					from := 1 + w%(o.Nodes-1)
					for i := 0; i < o.Ops && !stop.Load(); i++ {
						p := int32((w*31 + i) % diffPages)
						switch i % 3 {
						case 0:
							rep, _, err := c.call(from, 0, &msg.DiffRequest{
								From: int32(from), Page: p, Intervals: []int32{1}})
							if err == nil {
								if dr := rep.(*msg.DiffReply); dr.Diffs[0] == nil {
									err = fmt.Errorf("page %d: seeded diff missing", p)
								}
							}
							report(err)
						case 1:
							// Manager-0 pages only: multiples of Nodes.
							pp := int32(o.Nodes * (i % (diffPages / o.Nodes)))
							_, _, err := c.call(from, 0, &msg.PageRequest{
								From: int32(from), Page: pp})
							report(err)
						default:
							_, _, err := c.call(from, 0, &msg.DiffBatchRequest{
								From: int32(from),
								Pages: []msg.PageIntervals{
									{Page: p, Intervals: []int32{1}},
									{Page: (p + 7) % diffPages, Intervals: []int32{1}},
								}})
							report(err)
						}
					}
				}(w)
			}

			// GC goroutine: collect the high stripe [48, Pages) on node 0
			// over and over. The first collect drops the seeded diff under
			// the shard write lock; repeats exercise the already-empty
			// path concurrently with the readers above.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < o.Ops/2 && !stop.Load(); i++ {
					p := int32(diffPages + i%(o.Pages-diffPages))
					_, _, err := c.call(1, 0, &msg.GCCollect{Page: p})
					report(err)
				}
			}()

			// Stats goroutine: concurrent snapshots exercise every atomic
			// counter the serve paths bump.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < o.Ops && !stop.Load(); i++ {
					snap := c.Stats().Snapshot()
					for _, cs := range snap.Calls {
						if cs.Count < 0 {
							report(fmt.Errorf("impossible call count for %s", cs.Kind))
						}
					}
				}
			}()

			wg.Wait()
			if ep := fail.Load(); ep != nil {
				t.Fatal(*ep)
			}
		})
	}
}

// TestRaceLockTrafficDuringServes overlays lock-manager traffic on the
// diff-serve hammer: each peer node runs acquire/release cycles on its
// own lock (so mutual exclusion — normally the engine's job — is not
// needed) while every node's serve path is kept busy by diff requests.
// Lock releases close the releaser's interval, so this exercises
// closeInterval's strided shard scan concurrently with remote serves of
// the same node — the cross-concern interleaving the per-concern
// mutexes (mu, lockMgrMu, shard locks) must keep independent.
func TestRaceLockTrafficDuringServes(t *testing.T) {
	o := raceOpts(0)
	c, err := newHotpathCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	var (
		wg   sync.WaitGroup
		stop atomic.Bool
		fail atomic.Pointer[error]
	)
	report := func(err error) {
		if err != nil {
			fail.CompareAndSwap(nil, &err)
			stop.Store(true)
		}
	}

	// One lock goroutine per node: node i cycles lock i, whose manager is
	// node i%Nodes = i itself for i < Nodes, plus lock i+Nodes managed by
	// the same node — and lock i+1 managed by a different node, forcing
	// remote acquire traffic too.
	for node := 0; node < o.Nodes; node++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			locks := []int32{int32(node), int32((node+1)%o.Nodes + o.Nodes)}
			for i := 0; i < o.Ops/4 && !stop.Load(); i++ {
				lk := locks[i%len(locks)]
				if _, err := c.AcquireLock(node, 0, lk); err != nil {
					report(err)
					return
				}
				if _, err := c.ReleaseLock(node, 0, lk); err != nil {
					report(err)
					return
				}
			}
		}(node)
	}

	// Diff hammer against every node at once: requester w targets server
	// (w+1)%Nodes, so each node is simultaneously a lock client, a lock
	// manager, and a diff server. Only node 0's diff store is seeded, so
	// check hits only there.
	for w := 0; w < o.Peers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			to := (w + 1) % o.Nodes
			from := (to + 1) % o.Nodes
			for i := 0; i < o.Ops && !stop.Load(); i++ {
				p := int32((w*17 + i) % o.Pages)
				_, _, err := c.call(from, to, &msg.DiffRequest{
					From: int32(from), Page: p, Intervals: []int32{1}})
				report(err)
			}
		}(w)
	}

	wg.Wait()
	if ep := fail.Load(); ep != nil {
		t.Fatal(*ep)
	}
}
