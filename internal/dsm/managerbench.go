package dsm

// Manager-decentralization benchmark harness: deterministic
// message-structure measurements for the BENCH_managers.json gate
// (internal/experiments/managers.go). Unlike the hot-path harness this
// measures protocol shape, not wall clock — how deep the barrier's
// critical path is and where lock-manager traffic lands — so the
// committed numbers are exact and machine-independent.
//
// Both measurements observe the real protocol through a Probe: every
// logical transport call reports its endpoints and message kind, and
// the harness reconstructs the barrier tree (or the flat star) from the
// recorded edges rather than trusting the topology code it is meant to
// gate.

import (
	"fmt"
	"sync"
	"time"

	"actdsm/internal/msg"
)

// BarrierShapeOptions configures one BarrierShapeBench run.
type BarrierShapeOptions struct {
	// Nodes is the cluster size (default 64).
	Nodes int
	// Arity is passed through to Config.BarrierArity: 0 is the flat
	// single-manager barrier, k >= 2 the k-ary tree.
	Arity int
}

// BarrierShapeResult is one measured barrier episode. Depths are
// critical-path lengths in units of serialized messages: calls to the
// same destination serialize, and an interior tree node cannot forward
// its aggregate before its whole subtree has reported, so the enter
// depth of a topology is
//
//	depth(v) = fan-in(v) + max over children c of depth(c)
//
// evaluated at the root. A flat 64-node barrier scores 63 (every enter
// serializes at node 0); an arity-2 tree scores at most
// 2*ceil(log2 64) = 12. The release phase is measured the same way on
// the fan-out edges.
type BarrierShapeResult struct {
	Nodes int `json:"nodes"`
	// Arity echoes the configured topology (0 = flat).
	Arity int `json:"arity"`
	// EnterDepth and ReleaseDepth are the measured critical-path
	// depths of the two fan phases.
	EnterDepth   int `json:"enter_depth"`
	ReleaseDepth int `json:"release_depth"`
	// EnterCalls and ReleaseCalls are the transport-call counts of the
	// phases (both topologies send n-1 messages per phase; only the
	// arrangement differs).
	EnterCalls   int `json:"enter_calls"`
	ReleaseCalls int `json:"release_calls"`
	// MaxInDegree is the most barrier-enter messages any single node
	// received: n-1 at the flat manager, at most Arity in the tree.
	MaxInDegree int `json:"max_in_degree"`
}

func (o BarrierShapeOptions) withDefaults() BarrierShapeOptions {
	if o.Nodes == 0 {
		o.Nodes = 64
	}
	return o
}

// BarrierShapeBench runs one barrier episode on an idle cluster and
// reports the topology the messages actually formed. SerialFanOut keeps
// the run deterministic; the payload (no writes, no notices) does not
// affect the shape.
func BarrierShapeBench(o BarrierShapeOptions) (BarrierShapeResult, error) {
	o = o.withDefaults()
	if o.Nodes < 2 {
		return BarrierShapeResult{}, fmt.Errorf("dsm: barrier shape needs at least 2 nodes, got %d", o.Nodes)
	}
	c, err := New(Config{
		Nodes:            o.Nodes,
		Pages:            o.Nodes,
		BarrierArity:     o.Arity,
		SerialFanOut:     true,
		GCThresholdBytes: -1,
	})
	if err != nil {
		return BarrierShapeResult{}, err
	}
	defer func() { _ = c.Close() }()

	var (
		mu      sync.Mutex
		enter   [][2]int // child -> parent
		release [][2]int // parent -> child
	)
	c.SetProbe(&Probe{
		TransportCall: func(from, to int, kind msg.Kind, bytes int, wall time.Duration, failed bool) {
			mu.Lock()
			defer mu.Unlock()
			switch kind {
			case msg.KindBarrierEnter:
				enter = append(enter, [2]int{from, to})
			case msg.KindBarrierRelease:
				release = append(release, [2]int{from, to})
			}
		},
	})
	if _, err := c.Barrier(); err != nil {
		return BarrierShapeResult{}, err
	}

	mu.Lock()
	defer mu.Unlock()
	enterChildren := map[int][]int{}
	inDegree := map[int]int{}
	for _, e := range enter {
		enterChildren[e[1]] = append(enterChildren[e[1]], e[0])
		inDegree[e[1]]++
	}
	releaseChildren := map[int][]int{}
	for _, e := range release {
		releaseChildren[e[0]] = append(releaseChildren[e[0]], e[1])
	}
	maxIn := 0
	for _, d := range inDegree {
		if d > maxIn {
			maxIn = d
		}
	}
	return BarrierShapeResult{
		Nodes:        o.Nodes,
		Arity:        o.Arity,
		EnterDepth:   fanDepth(enterChildren, 0),
		ReleaseDepth: fanDepth(releaseChildren, 0),
		EnterCalls:   len(enter),
		ReleaseCalls: len(release),
		MaxInDegree:  maxIn,
	}, nil
}

// fanDepth computes the serialized-message critical path of a fan
// rooted at root: a node's own fan (its direct edges serialize) plus
// the deepest child subtree. Works for both directions — children maps
// aggregation sources for the enter phase and relay targets for the
// release phase.
func fanDepth(children map[int][]int, root int) int {
	deepest := 0
	for _, c := range children[root] {
		if d := fanDepth(children, c); d > deepest {
			deepest = d
		}
	}
	return len(children[root]) + deepest
}

// LockSpreadOptions configures one LockSpreadBench run.
type LockSpreadOptions struct {
	// Nodes is the cluster size (default 8).
	Nodes int
	// Locks is the number of distinct locks the chain rotates over
	// (default 16).
	Locks int
	// Rounds is the number of hand-off rounds (default 8).
	Rounds int
	// LockShards is passed through to Config.LockShards: 1 is the
	// centralized node-0 baseline, 0 the sharded default.
	LockShards int
}

// LockSpreadResult reports where one LockChain-style workload's
// manager-bound lock messages (acquires, releases, and forwarded-grant
// pulls) landed. The counts are deterministic: the workload is serial
// and local self-serves never touch the wire.
type LockSpreadResult struct {
	// Shards is the effective shard count.
	Shards int `json:"shards"`
	// Calls is the total manager-bound lock messages on the wire.
	Calls int `json:"calls"`
	// PerNode is the per-destination breakdown, indexed by node id.
	PerNode []int `json:"per_node"`
	// Node0Share is PerNode[0] / Calls — 1.0 when every lock is
	// centralized on node 0, and bounded well below that once locks
	// shard across the cluster.
	Node0Share float64 `json:"node0_share"`
}

func (o LockSpreadOptions) withDefaults() LockSpreadOptions {
	if o.Nodes == 0 {
		o.Nodes = 8
	}
	if o.Locks == 0 {
		o.Locks = 16
	}
	if o.Rounds == 0 {
		o.Rounds = 8
	}
	return o
}

// LockSpreadBench runs a synthetic LockChain workload — every round,
// lock l is acquired and released by node (l+round) mod Nodes, so each
// lock's ownership walks the cluster — and counts which node served
// each wire-bound lock message.
func LockSpreadBench(o LockSpreadOptions) (LockSpreadResult, error) {
	o = o.withDefaults()
	if o.Nodes < 2 {
		return LockSpreadResult{}, fmt.Errorf("dsm: lock spread needs at least 2 nodes, got %d", o.Nodes)
	}
	c, err := New(Config{
		Nodes:            o.Nodes,
		Pages:            o.Nodes,
		LockShards:       o.LockShards,
		SerialFanOut:     true,
		GCThresholdBytes: -1,
	})
	if err != nil {
		return LockSpreadResult{}, err
	}
	defer func() { _ = c.Close() }()

	var mu sync.Mutex
	perNode := make([]int, o.Nodes)
	c.SetProbe(&Probe{
		TransportCall: func(from, to int, kind msg.Kind, bytes int, wall time.Duration, failed bool) {
			switch kind {
			case msg.KindLockAcquire, msg.KindLockRelease, msg.KindLockPull:
				mu.Lock()
				perNode[to]++
				mu.Unlock()
			}
		},
	})

	for r := 0; r < o.Rounds; r++ {
		for l := 0; l < o.Locks; l++ {
			node := (l + r) % o.Nodes
			if _, err := c.AcquireLock(node, 0, int32(l)); err != nil {
				return LockSpreadResult{}, err
			}
			if _, err := c.ReleaseLock(node, 0, int32(l)); err != nil {
				return LockSpreadResult{}, err
			}
		}
		// A barrier per round keeps the known sets (and thus release
		// payloads) bounded, exactly like a real iteration loop.
		if _, err := c.Barrier(); err != nil {
			return LockSpreadResult{}, err
		}
	}

	mu.Lock()
	defer mu.Unlock()
	res := LockSpreadResult{
		Shards:  c.lockShards(),
		PerNode: append([]int(nil), perNode...),
	}
	for _, n := range perNode {
		res.Calls += n
	}
	if res.Calls > 0 {
		res.Node0Share = float64(perNode[0]) / float64(res.Calls)
	}
	return res, nil
}
