package dsm

import (
	"errors"
	"fmt"

	"actdsm/internal/memlayout"
)

// Diffs are the core of the multi-writer protocol: when a node first
// writes a page in an interval it saves a twin (a copy of the page); at
// the end of the interval the twin is compared against the current page
// and the changed words are encoded as a diff. Concurrent writers of the
// same page produce diffs for disjoint words (the program is data-race
// free), so applying all diffs in happens-before order reconstructs the
// page.
//
// Wire format: a sequence of runs, each [u16 byte-offset][u16 byte-length]
// followed by length payload bytes. Runs are word-aligned (4 bytes), in
// increasing offset order.

const diffWord = 4

// ErrBadDiff reports a malformed diff.
var ErrBadDiff = errors.New("dsm: malformed diff")

// MakeDiff encodes the word-granularity differences between twin and cur.
// Both must be memlayout.PageSize bytes. The result is nil when the page
// is unchanged.
func MakeDiff(twin, cur []byte) []byte {
	out := AppendDiff(nil, twin, cur)
	if len(out) == 0 {
		return nil
	}
	return out
}

// AppendDiff appends the encoded differences between twin and cur to dst
// and returns the extended slice (len(dst) unchanged when the page is
// unchanged). The append form lets callers reuse pooled buffers — the
// diff store encodes into recycled buffers so a collected diff's bytes
// can back a future one.
func AppendDiff(dst, twin, cur []byte) []byte {
	out := dst
	i := 0
	for i < memlayout.PageSize {
		// Skip equal words.
		for i < memlayout.PageSize && wordsEqual(twin, cur, i) {
			i += diffWord
		}
		if i >= memlayout.PageSize {
			break
		}
		start := i
		for i < memlayout.PageSize && !wordsEqual(twin, cur, i) {
			i += diffWord
		}
		runLen := i - start
		out = append(out,
			byte(start), byte(start>>8),
			byte(runLen), byte(runLen>>8))
		out = append(out, cur[start:start+runLen]...)
	}
	return out
}

func wordsEqual(a, b []byte, i int) bool {
	return a[i] == b[i] && a[i+1] == b[i+1] && a[i+2] == b[i+2] && a[i+3] == b[i+3]
}

// ApplyDiff applies a diff produced by MakeDiff to page (which must be
// memlayout.PageSize bytes).
func ApplyDiff(page, diff []byte) error {
	i := 0
	for i < len(diff) {
		if i+4 > len(diff) {
			return fmt.Errorf("%w: truncated run header", ErrBadDiff)
		}
		off := int(diff[i]) | int(diff[i+1])<<8
		n := int(diff[i+2]) | int(diff[i+3])<<8
		i += 4
		if n == 0 || off+n > memlayout.PageSize || i+n > len(diff) {
			return fmt.Errorf("%w: run off=%d len=%d", ErrBadDiff, off, n)
		}
		copy(page[off:off+n], diff[i:i+n])
		i += n
	}
	return nil
}
