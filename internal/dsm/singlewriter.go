package dsm

import (
	"fmt"

	"actdsm/internal/msg"
	"actdsm/internal/sim"
	"actdsm/internal/vm"
)

// Single-writer protocol: the classic ownership-based coherence of
// sequentially-consistent DSMs (Ivy/Mirage lineage). Exactly one node owns
// a page at a time; readers hold replicas that a write invalidates, and
// every transfer ships the whole page. There are no twins, diffs, or
// write notices — and correspondingly no tolerance for concurrent
// writers: two nodes writing disjoint words of one page ping-pong the
// whole page back and forth (false sharing).
//
// The paper's §6 argues this is why suspension-scheduling-style fixes are
// obsolete once a relaxed-consistency multi-writer protocol is used; the
// AblationProtocol experiment makes that argument measurable. Ownership
// is tracked at each page's manager; requester-side virtual time charges
// cover the requester's round trip (manager-side fan-out latency is
// reflected in message counts but not charged — a documented
// simplification).
//
// Locking: the manager-side ownership table (n.sw) lives under its own
// leaf mutex (n.swMu); page data, protections, and hasCopy live under
// the page's shard lock, exactly as in the multi-writer protocol. No
// path holds both at once, and neither is held across a transport call.
// Serve-side full-page images come from the page-buffer pool and are
// recycled by the transport handler after encoding (recycleReply).

// Protocol selects the coherence protocol.
type Protocol uint8

// Protocols.
const (
	// MultiWriter is the CVM-like lazy-release-consistency protocol
	// (default).
	MultiWriter Protocol = iota + 1
	// SingleWriter is the ownership/invalidation protocol.
	SingleWriter
)

// swState is the manager-side ownership record of one page.
type swState struct {
	owner int32
	// copyset is a bitmask of nodes holding read replicas (bit per
	// node; owner included).
	copyset uint64
}

// initSingleWriter seeds ownership at the managers.
func (n *node) initSingleWriter() {
	n.sw = make([]swState, len(n.pages))
	for p := range n.sw {
		if n.c.staticHome(vm.PageID(p)) == n.id {
			n.sw[p] = swState{owner: int32(n.id), copyset: 1 << uint(n.id)}
		}
	}
}

// swGet reads one page's ownership record under the ownership mutex.
func (n *node) swGet(p vm.PageID) swState {
	n.swMu.Lock()
	st := n.sw[p]
	n.swMu.Unlock()
	return st
}

// resolveFaultSW is the single-writer fault path.
func (n *node) resolveFaultSW(tid int, p vm.PageID, a vm.Access) error {
	c := n.c
	c.stats.CoherenceFaults.Add(1)
	n.addCharge(sim.ThreadInterval{Overhead: c.costs.SoftFault})
	mgr := c.staticHome(p)

	var remote bool
	var err error
	if mgr == n.id {
		remote, err = n.swManagerLocalFault(p, a)
	} else {
		remote, err = n.swRemoteFault(mgr, p, a)
	}
	if err != nil {
		return err
	}
	if remote {
		c.stats.RemoteMisses.Add(1)
		c.notifyRemoteFault(n.id, tid, p)
	}
	return nil
}

// swRemoteFault handles a fault on a node that does not manage the page:
// one round trip to the manager resolves everything.
func (n *node) swRemoteFault(mgr int, p vm.PageID, a vm.Access) (bool, error) {
	c := n.c
	var req msg.Message
	if a == vm.Write {
		req = &msg.SWWrite{From: int32(n.id), Page: int32(p)}
	} else {
		req = &msg.SWRead{From: int32(n.id), Page: int32(p)}
	}
	reply, wire, err := c.call(n.id, mgr, req)
	if err != nil {
		return false, fmt.Errorf("dsm: node %d sw fault page %d: %w", n.id, p, err)
	}
	pr, ok := reply.(*msg.PageReply)
	if !ok {
		return false, fmt.Errorf("dsm: node %d sw fault page %d: unexpected reply %T", n.id, p, reply)
	}
	c.stats.PageFetches.Add(1)
	n.addCharge(sim.ThreadInterval{Stall: wire})

	sh := n.lockShard(p)
	st := &n.pages[p]
	if len(pr.Data) > 0 {
		copy(n.pageData(p), pr.Data)
	}
	st.hasCopy = true
	if a == vm.Write {
		n.as.SetProt(p, vm.ProtReadWrite)
	} else {
		n.as.SetProt(p, vm.ProtRead)
	}
	sh.mu.Unlock()
	putPageBuf(pr.Data)
	pr.Data = nil
	return true, nil
}

// swManagerLocalFault handles the manager's own access to a page it
// manages.
func (n *node) swManagerLocalFault(p vm.PageID, a vm.Access) (bool, error) {
	st := n.swGet(p)
	remote := false

	if int(st.owner) != n.id {
		// Fetch (and for writes, take) the page from the owner.
		var req msg.Message
		if a == vm.Write {
			req = &msg.SWFlush{Page: int32(p)}
		} else {
			req = &msg.SWDowngrade{Page: int32(p)}
		}
		reply, wire, err := n.c.call(n.id, int(st.owner), req)
		if err != nil {
			return false, fmt.Errorf("dsm: manager %d sw fetch page %d: %w", n.id, p, err)
		}
		pr, ok := reply.(*msg.PageReply)
		if !ok {
			return false, fmt.Errorf("dsm: manager %d sw fetch page %d: bad reply %T", n.id, p, reply)
		}
		n.c.stats.PageFetches.Add(1)
		n.addCharge(sim.ThreadInterval{Stall: wire})
		sh := n.lockShard(p)
		copy(n.pageData(p), pr.Data)
		n.pages[p].hasCopy = true
		sh.mu.Unlock()
		putPageBuf(pr.Data)
		pr.Data = nil
		remote = true
	}

	if a == vm.Write {
		if rem, err := n.swInvalidateOthers(p, n.id, int(st.owner)); err != nil {
			return false, err
		} else if rem {
			remote = true
		}
		n.swMu.Lock()
		n.sw[p] = swState{owner: int32(n.id), copyset: 1 << uint(n.id)}
		n.swMu.Unlock()
		sh := n.lockShard(p)
		n.as.SetProt(p, vm.ProtReadWrite)
		sh.mu.Unlock()
	} else {
		n.swMu.Lock()
		n.sw[p].copyset |= 1 << uint(n.id)
		if int(n.sw[p].owner) != n.id {
			// The old owner keeps a read replica after downgrade.
			n.sw[p].copyset |= 1 << uint(st.owner)
		}
		n.swMu.Unlock()
		sh := n.lockShard(p)
		n.as.SetProt(p, vm.ProtRead)
		sh.mu.Unlock()
	}
	return remote, nil
}

// swInvalidateOthers drops every replica except keep1/keep2; returns
// whether any remote message was sent.
func (n *node) swInvalidateOthers(p vm.PageID, keep1, keep2 int) (bool, error) {
	cs := n.swGet(p).copyset
	sent := false
	for node := 0; node < n.c.cfg.Nodes; node++ {
		if cs&(1<<uint(node)) == 0 || node == keep1 || node == keep2 {
			continue
		}
		if node == n.id {
			n.swDropLocal(p)
			continue
		}
		if _, _, err := n.c.call(n.id, node, &msg.SWInvalidate{Page: int32(p)}); err != nil {
			return sent, fmt.Errorf("dsm: invalidate page %d at node %d: %w", p, node, err)
		}
		sent = true
	}
	return sent, nil
}

func (n *node) swDropLocal(p vm.PageID) {
	sh := n.lockShard(p)
	n.pages[p].hasCopy = false
	n.as.SetProt(p, vm.ProtNone)
	sh.mu.Unlock()
}

// serveSWRead runs at the manager: join the copyset and return current
// data (downgrading the owner to read-only).
func (n *node) serveSWRead(req *msg.SWRead) (msg.Message, error) {
	p := vm.PageID(req.Page)
	if n.c.staticHome(p) != n.id {
		return nil, fmt.Errorf("dsm: node %d is not manager of page %d", n.id, p)
	}
	st := n.swGet(p)

	var data []byte
	switch int(st.owner) {
	case n.id:
		sh := n.lockShard(p)
		data = getPageBuf()
		copy(data, n.pageData(p))
		if n.as.Prot(p) == vm.ProtReadWrite {
			n.as.SetProt(p, vm.ProtRead)
		}
		sh.mu.Unlock()
	case int(req.From):
		// Requester is the owner asking to read — should not fault,
		// but answer benignly with no data.
	default:
		reply, _, err := n.c.call(n.id, int(st.owner), &msg.SWDowngrade{Page: req.Page})
		if err != nil {
			return nil, err
		}
		pr, ok := reply.(*msg.PageReply)
		if !ok {
			return nil, fmt.Errorf("dsm: sw read page %d: bad owner reply %T", p, reply)
		}
		data = pr.Data
	}
	n.swMu.Lock()
	n.sw[p].copyset |= 1 << uint(req.From)
	n.swMu.Unlock()
	return &msg.PageReply{Page: req.Page, Data: data}, nil
}

// serveSWWrite runs at the manager: flush the owner, invalidate replicas,
// and transfer ownership to the requester.
func (n *node) serveSWWrite(req *msg.SWWrite) (msg.Message, error) {
	p := vm.PageID(req.Page)
	if n.c.staticHome(p) != n.id {
		return nil, fmt.Errorf("dsm: node %d is not manager of page %d", n.id, p)
	}
	st := n.swGet(p)

	var data []byte
	switch int(st.owner) {
	case int(req.From):
		// Ownership upgrade: requester already has current data.
	case n.id:
		sh := n.lockShard(p)
		data = getPageBuf()
		copy(data, n.pageData(p))
		sh.mu.Unlock()
		n.swDropLocal(p)
	default:
		reply, _, err := n.c.call(n.id, int(st.owner), &msg.SWFlush{Page: req.Page})
		if err != nil {
			return nil, err
		}
		pr, ok := reply.(*msg.PageReply)
		if !ok {
			return nil, fmt.Errorf("dsm: sw write page %d: bad owner reply %T", p, reply)
		}
		data = pr.Data
	}
	if _, err := n.swInvalidateOthers(p, int(req.From), int(st.owner)); err != nil {
		return nil, err
	}
	// The old owner surrendered its copy above (flush); ensure it is
	// not left in the copyset.
	n.swMu.Lock()
	n.sw[p] = swState{owner: req.From, copyset: 1 << uint(req.From)}
	n.swMu.Unlock()
	return &msg.PageReply{Page: req.Page, Data: data}, nil
}

// serveSWDowngrade runs at the owner: keep a read-only replica and return
// the data.
func (n *node) serveSWDowngrade(req *msg.SWDowngrade) (msg.Message, error) {
	p := vm.PageID(req.Page)
	sh := n.lockShard(p)
	data := getPageBuf()
	copy(data, n.pageData(p))
	if n.as.Prot(p) == vm.ProtReadWrite {
		n.as.SetProt(p, vm.ProtRead)
	}
	sh.mu.Unlock()
	return &msg.PageReply{Page: req.Page, Data: data}, nil
}

// serveSWFlush runs at the owner: surrender the page entirely.
func (n *node) serveSWFlush(req *msg.SWFlush) (msg.Message, error) {
	p := vm.PageID(req.Page)
	sh := n.lockShard(p)
	data := getPageBuf()
	copy(data, n.pageData(p))
	n.pages[p].hasCopy = false
	n.as.SetProt(p, vm.ProtNone)
	sh.mu.Unlock()
	return &msg.PageReply{Page: req.Page, Data: data}, nil
}

// serveSWInvalidate drops a read replica.
func (n *node) serveSWInvalidate(req *msg.SWInvalidate) (msg.Message, error) {
	n.swDropLocal(vm.PageID(req.Page))
	return &msg.Ack{}, nil
}
