package dsm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"actdsm/internal/memlayout"
)

func page() []byte { return make([]byte, memlayout.PageSize) }

func TestMakeDiffEmpty(t *testing.T) {
	a, b := page(), page()
	copy(a, []byte{1, 2, 3})
	copy(b, []byte{1, 2, 3})
	if d := MakeDiff(a, b); d != nil {
		t.Fatalf("diff of identical pages = %d bytes, want nil", len(d))
	}
}

func TestMakeDiffSingleWord(t *testing.T) {
	twin, cur := page(), page()
	cur[100] = 0xff // inside word at offset 100
	d := MakeDiff(twin, cur)
	// One run: 4-byte header + 4-byte payload.
	if len(d) != 8 {
		t.Fatalf("diff = %d bytes, want 8", len(d))
	}
	out := page()
	if err := ApplyDiff(out, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, cur) {
		t.Fatal("apply did not reproduce page")
	}
}

func TestDiffRoundTripProperty(t *testing.T) {
	check := func(edits []struct {
		Off uint16
		Val byte
	}) bool {
		twin, cur := page(), page()
		for i := range twin {
			twin[i] = byte(i * 7)
			cur[i] = twin[i]
		}
		for _, e := range edits {
			cur[int(e.Off)%memlayout.PageSize] = e.Val
		}
		d := MakeDiff(twin, cur)
		got := page()
		copy(got, twin)
		if err := ApplyDiff(got, d); err != nil {
			return false
		}
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffConcurrentWritersDisjointWords(t *testing.T) {
	// Two writers modify disjoint words of the same page; applying both
	// diffs in either order yields the merged page.
	base := page()
	for i := range base {
		base[i] = byte(i)
	}
	curA, curB := page(), page()
	copy(curA, base)
	copy(curB, base)
	memlayout.ViewF32(curA).Set(0, 1.5)   // word 0
	memlayout.ViewF32(curB).Set(100, 2.5) // word 100
	dA := MakeDiff(base, curA)
	dB := MakeDiff(base, curB)

	want := page()
	copy(want, base)
	memlayout.ViewF32(want).Set(0, 1.5)
	memlayout.ViewF32(want).Set(100, 2.5)

	for _, order := range [][2][]byte{{dA, dB}, {dB, dA}} {
		got := page()
		copy(got, base)
		if err := ApplyDiff(got, order[0]); err != nil {
			t.Fatal(err)
		}
		if err := ApplyDiff(got, order[1]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("merge mismatch")
		}
	}
}

func TestApplyDiffMalformed(t *testing.T) {
	cases := [][]byte{
		{1},                   // truncated header
		{0, 0, 0, 0},          // zero-length run
		{0xfc, 0x0f, 8, 0},    // run beyond page end (off 4092 len 8)
		{0, 0, 8, 0, 1, 2, 3}, // payload shorter than run length
	}
	for i, d := range cases {
		if err := ApplyDiff(page(), d); !errors.Is(err, ErrBadDiff) {
			t.Errorf("case %d: err = %v, want ErrBadDiff", i, err)
		}
	}
}

func TestDiffAdjacentRunsCoalesce(t *testing.T) {
	twin, cur := page(), page()
	// Change words 10..13 contiguously: one run expected.
	for w := 10; w < 14; w++ {
		cur[w*4] = 1
	}
	d := MakeDiff(twin, cur)
	if len(d) != 4+16 {
		t.Fatalf("diff = %d bytes, want one 16-byte run", len(d))
	}
}
