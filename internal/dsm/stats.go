package dsm

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"actdsm/internal/msg"
)

// LatencyBuckets is the number of power-of-two latency histogram buckets
// per message type. Bucket i counts calls whose wall-clock latency fell
// in [1µs<<i, 1µs<<(i+1)); bucket 0 also absorbs sub-microsecond calls
// and the last bucket absorbs the tail (≳ 131ms).
const LatencyBuckets = 18

// latencyBucket maps a duration to its histogram bucket.
func latencyBucket(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < LatencyBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// bucketBound returns the inclusive lower bound of bucket b.
func bucketBound(b int) time.Duration {
	return time.Microsecond << b
}

// BatchSizeBuckets is the number of power-of-two buckets in the batched
// diff fetch size histogram. Bucket i counts DiffBatchRequest calls that
// asked for a number of diffs in [1<<i, 1<<(i+1)); the last bucket
// absorbs the tail (≥ 128 diffs).
const BatchSizeBuckets = 8

// batchSizeBucket maps a batch size (number of requested diffs) to its
// histogram bucket.
func batchSizeBucket(n int) int {
	b := 0
	for n > 1 && b < BatchSizeBuckets-1 {
		n >>= 1
		b++
	}
	return b
}

// BatchSizeBound returns the inclusive lower bound of batch-size
// histogram bucket b.
func BatchSizeBound(b int) int { return 1 << b }

// CallStats counts one message type's transport calls. All fields are
// atomic: the parallel barrier/GC fan-out and TCP server goroutines
// report concurrently.
type CallStats struct {
	// Count is the number of completed Call round trips (success or
	// failure), excluding retries of the same logical call.
	Count atomic.Int64
	// Errors counts calls that ultimately failed.
	Errors atomic.Int64
	// Retries counts retry attempts made by the transport's retry
	// wrapper on behalf of this message type.
	Retries atomic.Int64
	// Bytes counts request + reply wire bytes.
	Bytes atomic.Int64
	// Latency is the wall-clock round-trip histogram.
	Latency [LatencyBuckets]atomic.Int64
}

// LinkStat counts one directed (from, to) link's transport traffic. All
// fields are atomic: the parallel fan-outs and TCP server goroutines
// report concurrently. With a heterogeneous Config.Topology the per-link
// volumes show which links the protocol actually loads — the quantity
// placement and prefetch decisions on non-uniform clusters care about.
type LinkStat struct {
	// Calls counts completed round trips charged to the link (success
	// or failure), excluding retries of the same logical call.
	Calls atomic.Int64
	// Bytes counts request + reply wire bytes.
	Bytes atomic.Int64
	// LatencyNS accumulates wall-clock round-trip nanoseconds.
	LatencyNS atomic.Int64
}

// record folds one completed call into the counters.
func (cs *CallStats) record(bytes int, d time.Duration, failed bool) {
	cs.Count.Add(1)
	cs.Bytes.Add(int64(bytes))
	if failed {
		cs.Errors.Add(1)
	}
	cs.Latency[latencyBucket(d)].Add(1)
}

// Stats counts protocol events. All fields are updated atomically so the
// TCP transport's server goroutines and the parallel broadcast fan-out
// can report concurrently with the simulation thread.
type Stats struct {
	// RemoteMisses counts access faults that required communication
	// with another node (full page fetch or diff fetch) — the quantity
	// regressed against cut cost in the paper's Table 2.
	RemoteMisses atomic.Int64
	// CoherenceFaults counts all coherence faults (including those
	// satisfied locally, e.g. a write fault that only creates a twin).
	CoherenceFaults atomic.Int64
	// TrackingFaults counts correlation faults during active tracking.
	TrackingFaults atomic.Int64
	// Messages counts protocol messages sent (requests and replies).
	Messages atomic.Int64
	// BytesTotal counts all protocol bytes ("Total Mbytes").
	BytesTotal atomic.Int64
	// BytesDiff counts bytes of diff payload ("Diff Mbytes").
	BytesDiff atomic.Int64
	// PageFetches counts full-page fetches.
	PageFetches atomic.Int64
	// DiffFetches counts diff fetch round trips.
	DiffFetches atomic.Int64
	// Barriers counts barrier episodes.
	Barriers atomic.Int64
	// BarrierRetries counts broadcast phases (barrier enter, barrier
	// release, or GC collect) that had to be re-broadcast after a
	// transport failure; receivers deduplicate the re-sent notices.
	BarrierRetries atomic.Int64
	// LockAcquires counts lock acquisitions.
	LockAcquires atomic.Int64
	// LockForwards counts acquisitions whose grant was forwarded: the
	// lock's shard manager redirected the acquirer to the previous
	// holder, which served the notices directly (HomeMigration mode).
	LockForwards atomic.Int64
	// HomeMigrations counts page homes moved to the page's last writer
	// at a barrier (HomeMigration mode).
	HomeMigrations atomic.Int64
	// GCCollections counts pages consolidated by garbage collection.
	GCCollections atomic.Int64
	// GCRounds counts garbage-collection episodes.
	GCRounds atomic.Int64
	// TwinsCreated counts twin creations.
	TwinsCreated atomic.Int64
	// DiffsCreated counts diffs created at interval ends.
	DiffsCreated atomic.Int64
	// DiffBatchFetches counts batched diff fetch round trips
	// (DiffBatchRequest calls), each replacing one or more DiffRequests.
	DiffBatchFetches atomic.Int64
	// BatchedDiffs counts diffs delivered through batched fetches.
	BatchedDiffs atomic.Int64
	// PrefetchRounds counts barrier-release prefetch rounds.
	PrefetchRounds atomic.Int64
	// PrefetchedPages counts pages brought current ahead of demand.
	PrefetchedPages atomic.Int64
	// PrefetchHits counts prefetched pages later touched by a resident
	// thread before being invalidated again — each hit is an avoided
	// demand miss.
	PrefetchHits atomic.Int64
	// PrefetchWasted counts prefetched pages invalidated (by a write
	// notice or a GC consolidation) before any local touch.
	PrefetchWasted atomic.Int64
	// PrefetchLate counts demand misses on pages the predictor selected
	// but the prefetch budget excluded in the preceding round.
	PrefetchLate atomic.Int64
	// Crashes counts node failures detected by the membership view
	// (Config.FaultTolerance).
	Crashes atomic.Int64
	// Rejoins counts crashed nodes that completed the recovery protocol
	// and re-entered the membership view.
	Rejoins atomic.Int64
	// ReplicaDeltas counts interval-state deltas shipped to ring
	// successors — the steady-state replication traffic fault tolerance
	// adds.
	ReplicaDeltas atomic.Int64
	// ReplicaBytes counts the wire bytes of those deltas.
	ReplicaBytes atomic.Int64
	// Failovers counts protocol calls re-routed to a dead node's ring
	// successor (page serves, diff fetches, lock traffic, barrier roles).
	Failovers atomic.Int64
	// RecoveryFetches counts full-page fetches performed by the recovery
	// machinery itself: standby reseeding after a crash or a GC round,
	// and a rejoining node re-fetching its home pages. They are server
	// traffic, not demand misses.
	RecoveryFetches atomic.Int64
	// RecoveryRounds counts standby-reseed sweeps (one per crash epoch
	// and one per GC round under fault tolerance).
	RecoveryRounds atomic.Int64
	// PlacementTriggers counts placement-controller evaluations: each
	// increment is one cost-model pass over the correlation matrix,
	// write history, and topology (placement v2, DESIGN.md §14).
	PlacementTriggers atomic.Int64
	// PlacementApplied counts controller evaluations whose predicted
	// improvement cleared the hysteresis threshold and were acted on.
	PlacementApplied atomic.Int64
	// PlacementSkipped counts controller evaluations suppressed by
	// hysteresis (predicted improvement below the threshold).
	PlacementSkipped atomic.Int64
	// PlacementThreadMoves counts thread migrations issued by the
	// placement controller (engine ApplyPlacement moves).
	PlacementThreadMoves atomic.Int64
	// PlacementHomeMoves counts explicit page-home moves queued by the
	// placement controller and applied at a barrier release.
	PlacementHomeMoves atomic.Int64
	// PlacementHomeSkips counts queued home moves dropped at apply time:
	// the target node was dead or no longer held a copy of the page (a
	// post-GC home must hold a base image to serve it).
	PlacementHomeSkips atomic.Int64
	// ShardContention counts contended page-shard lock acquisitions:
	// each increment means a service-path operation found its page's
	// shard held by another request and had to wait. A high rate
	// relative to Messages suggests raising Config.ServiceShards.
	ShardContention atomic.Int64
	// SyncContention counts contended acquisitions of the per-node
	// sync-state mutex (interval counters, notice histories, prefetch
	// windows).
	SyncContention atomic.Int64
	// BatchSizeHist is the histogram of diffs requested per
	// DiffBatchRequest, in power-of-two buckets.
	BatchSizeHist [BatchSizeBuckets]atomic.Int64
	// Calls holds per-message-type call counters and latency
	// histograms, indexed by msg.Kind of the request.
	Calls [msg.KindCount]CallStats

	// links holds per-directed-link counters, row-major from*linkN+to,
	// sized by InitLinks (the cluster constructor calls it). An unsized
	// Stats records nothing, so standalone Stats values in tests keep
	// working.
	linkN int
	links []LinkStat
}

// InitLinks sizes the per-link counter matrix for an n-node cluster.
// Not concurrency-safe; call before any traffic is recorded.
func (s *Stats) InitLinks(n int) {
	s.linkN = n
	s.links = make([]LinkStat, n*n)
}

// Link returns the live counters for the directed (from, to) link, or
// nil when the matrix is unsized or the pair is out of range.
func (s *Stats) Link(from, to int) *LinkStat {
	if from < 0 || to < 0 || from >= s.linkN || to >= s.linkN {
		return nil
	}
	return &s.links[from*s.linkN+to]
}

// recordLink folds one completed round trip into the (from, to) link.
func (s *Stats) recordLink(from, to, bytes int, d time.Duration) {
	if ls := s.Link(from, to); ls != nil {
		ls.Calls.Add(1)
		ls.Bytes.Add(int64(bytes))
		ls.LatencyNS.Add(d.Nanoseconds())
	}
}

// recordCall folds one completed transport round trip into the per-kind
// counters.
func (s *Stats) recordCall(k msg.Kind, bytes int, d time.Duration, failed bool) {
	if int(k) < len(s.Calls) {
		s.Calls[k].record(bytes, d, failed)
	}
}

// recordRetry counts one transport-level retry for the message kind
// encoded in payload (its first byte).
func (s *Stats) recordRetry(payload []byte) {
	if len(payload) == 0 {
		return
	}
	if k := msg.Kind(payload[0]); k.Valid() {
		s.Calls[k].Retries.Add(1)
	}
}

// CallSnapshot is a plain-value copy of one message type's CallStats.
type CallSnapshot struct {
	Kind    string
	Count   int64
	Errors  int64
	Retries int64
	Bytes   int64
	Latency [LatencyBuckets]int64
}

// Quantile returns the approximate q-quantile (0 < q <= 1) of the
// latency histogram: the lower bound of the bucket holding the q-th
// call. Returns 0 when no calls were recorded.
func (c CallSnapshot) Quantile(q float64) time.Duration {
	var total int64
	for _, n := range c.Latency {
		total += n
	}
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want >= total {
		want = total - 1
	}
	var seen int64
	for b, n := range c.Latency {
		seen += n
		if seen > want {
			return bucketBound(b)
		}
	}
	return bucketBound(LatencyBuckets - 1)
}

// Snapshot is a plain-value copy of Stats for reporting.
type Snapshot struct {
	RemoteMisses    int64
	CoherenceFaults int64
	TrackingFaults  int64
	Messages        int64
	BytesTotal      int64
	BytesDiff       int64
	PageFetches     int64
	DiffFetches     int64
	Barriers        int64
	BarrierRetries  int64
	LockAcquires    int64
	LockForwards    int64
	HomeMigrations  int64
	GCCollections   int64
	GCRounds        int64
	TwinsCreated    int64
	DiffsCreated    int64

	DiffBatchFetches int64
	BatchedDiffs     int64
	PrefetchRounds   int64
	PrefetchedPages  int64
	PrefetchHits     int64
	PrefetchWasted   int64
	PrefetchLate     int64
	Crashes          int64
	Rejoins          int64
	ReplicaDeltas    int64
	ReplicaBytes     int64
	Failovers        int64
	RecoveryFetches  int64
	RecoveryRounds   int64

	PlacementTriggers    int64
	PlacementApplied     int64
	PlacementSkipped     int64
	PlacementThreadMoves int64
	PlacementHomeMoves   int64
	PlacementHomeSkips   int64
	// ShardContention and SyncContention count contended lock
	// acquisitions on the service path (see Stats). They measure
	// wall-clock interleaving, not protocol behaviour, so they are
	// excluded from the determinism-compared Counters subset.
	ShardContention int64
	SyncContention  int64
	// BatchSizeHist is the diffs-per-batched-fetch histogram
	// (power-of-two buckets; see BatchSizeBound).
	BatchSizeHist [BatchSizeBuckets]int64
	// Calls holds the per-message-type counters for every kind with
	// activity, ordered by kind.
	Calls []CallSnapshot
	// Links holds the per-directed-link counters for every link with
	// activity, ordered row-major by (From, To). LatencyNS is wall-clock
	// and therefore, like the Calls latency histograms, excluded from
	// the determinism-compared Counters subset.
	Links []LinkSnapshot
}

// LinkSnapshot is a plain-value copy of one directed link's LinkStat.
type LinkSnapshot struct {
	From      int
	To        int
	Calls     int64
	Bytes     int64
	LatencyNS int64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() Snapshot {
	out := Snapshot{
		RemoteMisses:    s.RemoteMisses.Load(),
		CoherenceFaults: s.CoherenceFaults.Load(),
		TrackingFaults:  s.TrackingFaults.Load(),
		Messages:        s.Messages.Load(),
		BytesTotal:      s.BytesTotal.Load(),
		BytesDiff:       s.BytesDiff.Load(),
		PageFetches:     s.PageFetches.Load(),
		DiffFetches:     s.DiffFetches.Load(),
		Barriers:        s.Barriers.Load(),
		BarrierRetries:  s.BarrierRetries.Load(),
		LockAcquires:    s.LockAcquires.Load(),
		LockForwards:    s.LockForwards.Load(),
		HomeMigrations:  s.HomeMigrations.Load(),
		GCCollections:   s.GCCollections.Load(),
		GCRounds:        s.GCRounds.Load(),
		TwinsCreated:    s.TwinsCreated.Load(),
		DiffsCreated:    s.DiffsCreated.Load(),

		DiffBatchFetches: s.DiffBatchFetches.Load(),
		BatchedDiffs:     s.BatchedDiffs.Load(),
		PrefetchRounds:   s.PrefetchRounds.Load(),
		PrefetchedPages:  s.PrefetchedPages.Load(),
		PrefetchHits:     s.PrefetchHits.Load(),
		PrefetchWasted:   s.PrefetchWasted.Load(),
		PrefetchLate:     s.PrefetchLate.Load(),
		Crashes:          s.Crashes.Load(),
		Rejoins:          s.Rejoins.Load(),
		ReplicaDeltas:    s.ReplicaDeltas.Load(),
		ReplicaBytes:     s.ReplicaBytes.Load(),
		Failovers:        s.Failovers.Load(),
		RecoveryFetches:  s.RecoveryFetches.Load(),
		RecoveryRounds:   s.RecoveryRounds.Load(),

		PlacementTriggers:    s.PlacementTriggers.Load(),
		PlacementApplied:     s.PlacementApplied.Load(),
		PlacementSkipped:     s.PlacementSkipped.Load(),
		PlacementThreadMoves: s.PlacementThreadMoves.Load(),
		PlacementHomeMoves:   s.PlacementHomeMoves.Load(),
		PlacementHomeSkips:   s.PlacementHomeSkips.Load(),

		ShardContention: s.ShardContention.Load(),
		SyncContention:  s.SyncContention.Load(),
	}
	for b := range s.BatchSizeHist {
		out.BatchSizeHist[b] = s.BatchSizeHist[b].Load()
	}
	for k := range s.Calls {
		cs := &s.Calls[k]
		c := CallSnapshot{
			Kind:    msg.Kind(k).String(),
			Count:   cs.Count.Load(),
			Errors:  cs.Errors.Load(),
			Retries: cs.Retries.Load(),
			Bytes:   cs.Bytes.Load(),
		}
		if c.Count == 0 && c.Errors == 0 && c.Retries == 0 {
			continue
		}
		for b := range cs.Latency {
			c.Latency[b] = cs.Latency[b].Load()
		}
		out.Calls = append(out.Calls, c)
	}
	for i := range s.links {
		ls := &s.links[i]
		l := LinkSnapshot{
			From:      i / s.linkN,
			To:        i % s.linkN,
			Calls:     ls.Calls.Load(),
			Bytes:     ls.Bytes.Load(),
			LatencyNS: ls.LatencyNS.Load(),
		}
		if l.Calls == 0 && l.Bytes == 0 {
			continue
		}
		out.Links = append(out.Links, l)
	}
	return out
}

// Counters is the comparable, transport-independent subset of Snapshot:
// every protocol counter, but not the per-kind call table (whose latency
// histograms measure wall-clock time and therefore differ between
// transports and runs). Determinism tests compare Counters values.
type Counters struct {
	RemoteMisses    int64
	CoherenceFaults int64
	TrackingFaults  int64
	Messages        int64
	BytesTotal      int64
	BytesDiff       int64
	PageFetches     int64
	DiffFetches     int64
	Barriers        int64
	BarrierRetries  int64
	LockAcquires    int64
	LockForwards    int64
	HomeMigrations  int64
	GCCollections   int64
	GCRounds        int64
	TwinsCreated    int64
	DiffsCreated    int64

	DiffBatchFetches int64
	BatchedDiffs     int64
	PrefetchRounds   int64
	PrefetchedPages  int64
	PrefetchHits     int64
	PrefetchWasted   int64
	PrefetchLate     int64
	Crashes          int64
	Rejoins          int64
	ReplicaDeltas    int64
	ReplicaBytes     int64
	Failovers        int64
	RecoveryFetches  int64
	RecoveryRounds   int64

	PlacementTriggers    int64
	PlacementApplied     int64
	PlacementSkipped     int64
	PlacementThreadMoves int64
	PlacementHomeMoves   int64
	PlacementHomeSkips   int64
}

// Counters projects the snapshot onto its comparable counter subset.
func (s Snapshot) Counters() Counters {
	return Counters{
		RemoteMisses:    s.RemoteMisses,
		CoherenceFaults: s.CoherenceFaults,
		TrackingFaults:  s.TrackingFaults,
		Messages:        s.Messages,
		BytesTotal:      s.BytesTotal,
		BytesDiff:       s.BytesDiff,
		PageFetches:     s.PageFetches,
		DiffFetches:     s.DiffFetches,
		Barriers:        s.Barriers,
		BarrierRetries:  s.BarrierRetries,
		LockAcquires:    s.LockAcquires,
		LockForwards:    s.LockForwards,
		HomeMigrations:  s.HomeMigrations,
		GCCollections:   s.GCCollections,
		GCRounds:        s.GCRounds,
		TwinsCreated:    s.TwinsCreated,
		DiffsCreated:    s.DiffsCreated,

		DiffBatchFetches: s.DiffBatchFetches,
		BatchedDiffs:     s.BatchedDiffs,
		PrefetchRounds:   s.PrefetchRounds,
		PrefetchedPages:  s.PrefetchedPages,
		PrefetchHits:     s.PrefetchHits,
		PrefetchWasted:   s.PrefetchWasted,
		PrefetchLate:     s.PrefetchLate,
		Crashes:          s.Crashes,
		Rejoins:          s.Rejoins,
		ReplicaDeltas:    s.ReplicaDeltas,
		ReplicaBytes:     s.ReplicaBytes,
		Failovers:        s.Failovers,
		RecoveryFetches:  s.RecoveryFetches,
		RecoveryRounds:   s.RecoveryRounds,

		PlacementTriggers:    s.PlacementTriggers,
		PlacementApplied:     s.PlacementApplied,
		PlacementSkipped:     s.PlacementSkipped,
		PlacementThreadMoves: s.PlacementThreadMoves,
		PlacementHomeMoves:   s.PlacementHomeMoves,
		PlacementHomeSkips:   s.PlacementHomeSkips,
	}
}

// Sub returns the difference s - o, for measuring a window (e.g. one
// iteration) between two snapshots. Per-kind entries are matched by kind
// name.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	d := Snapshot{
		RemoteMisses:    s.RemoteMisses - o.RemoteMisses,
		CoherenceFaults: s.CoherenceFaults - o.CoherenceFaults,
		TrackingFaults:  s.TrackingFaults - o.TrackingFaults,
		Messages:        s.Messages - o.Messages,
		BytesTotal:      s.BytesTotal - o.BytesTotal,
		BytesDiff:       s.BytesDiff - o.BytesDiff,
		PageFetches:     s.PageFetches - o.PageFetches,
		DiffFetches:     s.DiffFetches - o.DiffFetches,
		Barriers:        s.Barriers - o.Barriers,
		BarrierRetries:  s.BarrierRetries - o.BarrierRetries,
		LockAcquires:    s.LockAcquires - o.LockAcquires,
		LockForwards:    s.LockForwards - o.LockForwards,
		HomeMigrations:  s.HomeMigrations - o.HomeMigrations,
		GCCollections:   s.GCCollections - o.GCCollections,
		GCRounds:        s.GCRounds - o.GCRounds,
		TwinsCreated:    s.TwinsCreated - o.TwinsCreated,
		DiffsCreated:    s.DiffsCreated - o.DiffsCreated,

		DiffBatchFetches: s.DiffBatchFetches - o.DiffBatchFetches,
		BatchedDiffs:     s.BatchedDiffs - o.BatchedDiffs,
		PrefetchRounds:   s.PrefetchRounds - o.PrefetchRounds,
		PrefetchedPages:  s.PrefetchedPages - o.PrefetchedPages,
		PrefetchHits:     s.PrefetchHits - o.PrefetchHits,
		PrefetchWasted:   s.PrefetchWasted - o.PrefetchWasted,
		PrefetchLate:     s.PrefetchLate - o.PrefetchLate,
		Crashes:          s.Crashes - o.Crashes,
		Rejoins:          s.Rejoins - o.Rejoins,
		ReplicaDeltas:    s.ReplicaDeltas - o.ReplicaDeltas,
		ReplicaBytes:     s.ReplicaBytes - o.ReplicaBytes,
		Failovers:        s.Failovers - o.Failovers,
		RecoveryFetches:  s.RecoveryFetches - o.RecoveryFetches,
		RecoveryRounds:   s.RecoveryRounds - o.RecoveryRounds,

		PlacementTriggers:    s.PlacementTriggers - o.PlacementTriggers,
		PlacementApplied:     s.PlacementApplied - o.PlacementApplied,
		PlacementSkipped:     s.PlacementSkipped - o.PlacementSkipped,
		PlacementThreadMoves: s.PlacementThreadMoves - o.PlacementThreadMoves,
		PlacementHomeMoves:   s.PlacementHomeMoves - o.PlacementHomeMoves,
		PlacementHomeSkips:   s.PlacementHomeSkips - o.PlacementHomeSkips,

		ShardContention: s.ShardContention - o.ShardContention,
		SyncContention:  s.SyncContention - o.SyncContention,
	}
	for b := range d.BatchSizeHist {
		d.BatchSizeHist[b] = s.BatchSizeHist[b] - o.BatchSizeHist[b]
	}
	prev := make(map[string]CallSnapshot, len(o.Calls))
	for _, c := range o.Calls {
		prev[c.Kind] = c
	}
	for _, c := range s.Calls {
		p := prev[c.Kind]
		c.Count -= p.Count
		c.Errors -= p.Errors
		c.Retries -= p.Retries
		c.Bytes -= p.Bytes
		for b := range c.Latency {
			c.Latency[b] -= p.Latency[b]
		}
		if c.Count == 0 && c.Errors == 0 && c.Retries == 0 {
			continue
		}
		d.Calls = append(d.Calls, c)
	}
	prevLinks := make(map[[2]int]LinkSnapshot, len(o.Links))
	for _, l := range o.Links {
		prevLinks[[2]int{l.From, l.To}] = l
	}
	for _, l := range s.Links {
		p := prevLinks[[2]int{l.From, l.To}]
		l.Calls -= p.Calls
		l.Bytes -= p.Bytes
		l.LatencyNS -= p.LatencyNS
		if l.Calls == 0 && l.Bytes == 0 {
			continue
		}
		d.Links = append(d.Links, l)
	}
	return d
}

// FormatCalls renders the per-message-type counters as an aligned table:
// one row per kind with call/error/retry counts, wire bytes, and latency
// quantiles from the histogram.
func (s Snapshot) FormatCalls() string {
	if len(s.Calls) == 0 {
		return "(no transport calls)\n"
	}
	calls := append([]CallSnapshot(nil), s.Calls...)
	sort.Slice(calls, func(i, j int) bool { return calls[i].Count > calls[j].Count })
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %9s %6s %7s %11s %8s %8s %8s\n",
		"message", "calls", "errs", "retries", "bytes", "p50", "p95", "p99")
	for _, c := range calls {
		fmt.Fprintf(&b, "%-15s %9d %6d %7d %11d %8s %8s %8s\n",
			c.Kind, c.Count, c.Errors, c.Retries, c.Bytes,
			fmtLat(c.Quantile(0.50)), fmtLat(c.Quantile(0.95)), fmtLat(c.Quantile(0.99)))
	}
	return b.String()
}

// DemandCalls returns the total number of remote data-movement round
// trips: PageRequest + DiffRequest + DiffBatchRequest calls. This is the
// quantity the prefetch/batching layer exists to reduce.
func (s Snapshot) DemandCalls() int64 {
	var total int64
	for _, c := range s.Calls {
		switch c.Kind {
		case msg.KindPageRequest.String(), msg.KindDiffRequest.String(), msg.KindDiffBatchRequest.String():
			total += c.Count
		}
	}
	return total
}

// FormatPrefetch renders the prefetch and batching accounting: the
// accuracy counters (hits / wasted / late) and the batch-size histogram.
func (s Snapshot) FormatPrefetch() string {
	var b strings.Builder
	fmt.Fprintf(&b, "prefetch: rounds %d  pages %d  hits %d  wasted %d  late %d\n",
		s.PrefetchRounds, s.PrefetchedPages, s.PrefetchHits, s.PrefetchWasted, s.PrefetchLate)
	fmt.Fprintf(&b, "batching: fetches %d  diffs %d\n", s.DiffBatchFetches, s.BatchedDiffs)
	var total int64
	for _, n := range s.BatchSizeHist {
		total += n
	}
	if total > 0 {
		fmt.Fprintf(&b, "batch size histogram (diffs per fetch):\n")
		for i, n := range s.BatchSizeHist {
			if n == 0 {
				continue
			}
			lo := BatchSizeBound(i)
			label := fmt.Sprintf("%d-%d", lo, BatchSizeBound(i+1)-1)
			if i == BatchSizeBuckets-1 {
				label = fmt.Sprintf("%d+", lo)
			} else if lo == BatchSizeBound(i+1)-1 {
				label = fmt.Sprintf("%d", lo)
			}
			fmt.Fprintf(&b, "  %7s %9d\n", label, n)
		}
	}
	return b.String()
}

// FormatLinks renders the per-directed-link traffic as an aligned
// table, busiest links (by bytes) first.
func (s Snapshot) FormatLinks() string {
	if len(s.Links) == 0 {
		return "(no per-link traffic recorded)\n"
	}
	links := append([]LinkSnapshot(nil), s.Links...)
	sort.Slice(links, func(i, j int) bool { return links[i].Bytes > links[j].Bytes })
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %9s %12s %10s\n", "link", "calls", "bytes", "mean-rtt")
	for _, l := range links {
		var mean time.Duration
		if l.Calls > 0 {
			mean = time.Duration(l.LatencyNS / l.Calls)
		}
		fmt.Fprintf(&b, "%3d->%-4d %9d %12d %10s\n", l.From, l.To, l.Calls, l.Bytes, fmtLat(mean))
	}
	return b.String()
}

// fmtLat renders a latency bound compactly.
func fmtLat(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%dµs", d.Microseconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	}
}
