package dsm

import "sync/atomic"

// Stats counts protocol events. All fields are updated atomically so the
// TCP transport's server goroutines can report concurrently with the
// simulation thread.
type Stats struct {
	// RemoteMisses counts access faults that required communication
	// with another node (full page fetch or diff fetch) — the quantity
	// regressed against cut cost in the paper's Table 2.
	RemoteMisses atomic.Int64
	// CoherenceFaults counts all coherence faults (including those
	// satisfied locally, e.g. a write fault that only creates a twin).
	CoherenceFaults atomic.Int64
	// TrackingFaults counts correlation faults during active tracking.
	TrackingFaults atomic.Int64
	// Messages counts protocol messages sent (requests and replies).
	Messages atomic.Int64
	// BytesTotal counts all protocol bytes ("Total Mbytes").
	BytesTotal atomic.Int64
	// BytesDiff counts bytes of diff payload ("Diff Mbytes").
	BytesDiff atomic.Int64
	// PageFetches counts full-page fetches.
	PageFetches atomic.Int64
	// DiffFetches counts diff fetch round trips.
	DiffFetches atomic.Int64
	// Barriers counts barrier episodes.
	Barriers atomic.Int64
	// LockAcquires counts lock acquisitions.
	LockAcquires atomic.Int64
	// GCCollections counts pages consolidated by garbage collection.
	GCCollections atomic.Int64
	// GCRounds counts garbage-collection episodes.
	GCRounds atomic.Int64
	// TwinsCreated counts twin creations.
	TwinsCreated atomic.Int64
	// DiffsCreated counts diffs created at interval ends.
	DiffsCreated atomic.Int64
}

// Snapshot is a plain-value copy of Stats for reporting.
type Snapshot struct {
	RemoteMisses    int64
	CoherenceFaults int64
	TrackingFaults  int64
	Messages        int64
	BytesTotal      int64
	BytesDiff       int64
	PageFetches     int64
	DiffFetches     int64
	Barriers        int64
	LockAcquires    int64
	GCCollections   int64
	GCRounds        int64
	TwinsCreated    int64
	DiffsCreated    int64
}

// Snapshot returns the current counter values.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		RemoteMisses:    s.RemoteMisses.Load(),
		CoherenceFaults: s.CoherenceFaults.Load(),
		TrackingFaults:  s.TrackingFaults.Load(),
		Messages:        s.Messages.Load(),
		BytesTotal:      s.BytesTotal.Load(),
		BytesDiff:       s.BytesDiff.Load(),
		PageFetches:     s.PageFetches.Load(),
		DiffFetches:     s.DiffFetches.Load(),
		Barriers:        s.Barriers.Load(),
		LockAcquires:    s.LockAcquires.Load(),
		GCCollections:   s.GCCollections.Load(),
		GCRounds:        s.GCRounds.Load(),
		TwinsCreated:    s.TwinsCreated.Load(),
		DiffsCreated:    s.DiffsCreated.Load(),
	}
}

// Sub returns the difference s - o, for measuring a window (e.g. one
// iteration) between two snapshots.
func (s Snapshot) Sub(o Snapshot) Snapshot {
	return Snapshot{
		RemoteMisses:    s.RemoteMisses - o.RemoteMisses,
		CoherenceFaults: s.CoherenceFaults - o.CoherenceFaults,
		TrackingFaults:  s.TrackingFaults - o.TrackingFaults,
		Messages:        s.Messages - o.Messages,
		BytesTotal:      s.BytesTotal - o.BytesTotal,
		BytesDiff:       s.BytesDiff - o.BytesDiff,
		PageFetches:     s.PageFetches - o.PageFetches,
		DiffFetches:     s.DiffFetches - o.DiffFetches,
		Barriers:        s.Barriers - o.Barriers,
		LockAcquires:    s.LockAcquires - o.LockAcquires,
		GCCollections:   s.GCCollections - o.GCCollections,
		GCRounds:        s.GCRounds - o.GCRounds,
		TwinsCreated:    s.TwinsCreated - o.TwinsCreated,
		DiffsCreated:    s.DiffsCreated - o.DiffsCreated,
	}
}
