package apps

import (
	"fmt"
	"math"
	"math/cmplx"

	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// fft is a six-step 1D FFT over n = R·C complex64 points, the structure of
// the SPLASH-2 radix-√n FFT: column FFTs, twiddle multiplication, row
// FFTs, with matrix transposes between phases. The transposes are the
// communication-heavy phases: a thread writes its own block of destination
// rows while reading column ranges of every source row, and the page
// geometry of those column ranges produces the thread-cluster structure in
// the correlation maps — clusters whose size and count change with the
// input size, the paper's Table 4 observation.
//
// The paper's inputs are labelled by the 2^6×2^6×2^k point counts:
// FFT6 = 2^18, FFT7 = 2^19, FFT8 = 2^20 points. Each iteration performs a
// forward and an inverse transform, so the data returns to its initial
// values, which the Verify mode checks.
type fft struct {
	name    string
	threads int
	iters   int
	r, c    int // matrix factorization n = r*c
	verify  bool
	data    memlayout.Region
	trans   memlayout.Region
}

func newFFT(name string, cfg Config, k int) (*fft, error) {
	// Paper scale: n = 2^(12+k); rows fixed at 64 so row length (and
	// with it the transpose page geometry) grows with the input. Test
	// scale keeps rows long enough (≥2 pages) that the three inputs
	// still produce distinct transpose page geometries.
	r, c := 64, 1024<<(k-6) // test scale: 2^(16+k-6) points
	if cfg.Scale == ScalePaper {
		r, c = 64, 1<<(6+k)
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 4
	}
	if cfg.Threads > r {
		return nil, fmt.Errorf("apps: %s: %d threads exceed %d matrix rows", name, cfg.Threads, r)
	}
	return &fft{
		name:    name,
		threads: cfg.Threads,
		iters:   iters,
		r:       r,
		c:       c,
		verify:  cfg.Verify,
	}, nil
}

func (f *fft) Name() string    { return f.name }
func (f *fft) Threads() int    { return f.threads }
func (f *fft) Iterations() int { return f.iters }

func (f *fft) n() int { return f.r * f.c }

func (f *fft) Setup(l *memlayout.Layout) error {
	var err error
	if f.data, err = l.Alloc(f.name+".data", f.n()*8); err != nil {
		return fmt.Errorf("apps: %s setup: %w", f.name, err)
	}
	if f.trans, err = l.Alloc(f.name+".trans", f.n()*8); err != nil {
		return fmt.Errorf("apps: %s setup: %w", f.name, err)
	}
	return nil
}

// initial is the deterministic input signal.
func (f *fft) initial(j int) complex128 {
	s := float64(j%97)/97 - 0.5
	t := float64(j%61)/61 - 0.5
	return complex(s, t)
}

func (f *fft) Body(tid int) threads.Body {
	return func(ctx *threads.Ctx) error {
		n := f.n()
		if tid == 0 {
			v, err := ctx.F32(f.data, 0, 2*n, vm.Write)
			if err != nil {
				return err
			}
			for j := 0; j < n; j++ {
				x := f.initial(j)
				v.Set(2*j, float32(real(x)))
				v.Set(2*j+1, float32(imag(x)))
			}
			ctx.Compute(n)
		}
		ctx.Barrier()
		for iter := 0; iter < f.iters; iter++ {
			// Forward: data → trans.
			if err := f.sixStep(ctx, tid, f.data, f.trans, f.r, f.c, -1, 1); err != nil {
				return err
			}
			// Inverse: trans → data (viewing trans as a C×R
			// matrix), scaled by 1/n.
			if err := f.sixStep(ctx, tid, f.trans, f.data, f.c, f.r, +1, 1/float64(n)); err != nil {
				return err
			}
			if f.verify && tid == 0 && iter == f.iters-1 {
				if err := f.check(ctx); err != nil {
					return err
				}
			}
			ctx.EndIteration()
		}
		return nil
	}
}

// sixStep computes dst = DFT_sign(src) (natural order), where src holds n
// points viewed as an R×C row-major matrix. Phases, each barrier
// separated:
//
//	A: transpose src (R×C) → dst (C×R)
//	B: length-R FFT of each dst row, then twiddle by ω^(c·p)
//	C: transpose dst (C×R) → src (R×C)   [src is clobbered]
//	D: length-C FFT of each src row, scaled by `scale`
//	E: transpose src (R×C) → dst (C×R): dst linear index q·R+p = k
func (f *fft) sixStep(ctx *threads.Ctx, tid int, src, dst memlayout.Region, r, c, sign int, scale float64) error {
	if err := f.transpose(ctx, tid, src, dst, r, c); err != nil {
		return err
	}
	ctx.Barrier()
	if err := f.fftRows(ctx, tid, dst, c, r, sign, true, 1); err != nil {
		return err
	}
	ctx.Barrier()
	if err := f.transpose(ctx, tid, dst, src, c, r); err != nil {
		return err
	}
	ctx.Barrier()
	if err := f.fftRows(ctx, tid, src, r, c, sign, false, scale); err != nil {
		return err
	}
	ctx.Barrier()
	if err := f.transpose(ctx, tid, src, dst, r, c); err != nil {
		return err
	}
	ctx.Barrier()
	return nil
}

// transpose writes dst[c][r] = src[r][c] for src an R×C matrix. The thread
// owns a block of dst rows (a column range of src): the reads of every
// src row's column sub-range are where cross-thread page sharing happens.
func (f *fft) transpose(ctx *threads.Ctx, tid int, src, dst memlayout.Region, r, c int) error {
	c0, ccnt := BlockRange(c, f.threads, tid)
	if ccnt == 0 {
		return nil
	}
	out, err := ctx.F32(dst, 2*c0*r, 2*ccnt*r, vm.Write)
	if err != nil {
		return err
	}
	for row := 0; row < r; row++ {
		in, err := ctx.F32(src, 2*(row*c+c0), 2*ccnt, vm.Read)
		if err != nil {
			return err
		}
		for j := 0; j < ccnt; j++ {
			// dst row (c0+j), column `row`.
			out.Set(2*(j*r+row), in.Get(2*j))
			out.Set(2*(j*r+row)+1, in.Get(2*j+1))
		}
	}
	ctx.Compute(r * ccnt)
	return nil
}

// fftRows runs an in-place length-l FFT on each of this thread's rows of a
// rows×l matrix stored in region m. With twiddle set, element p of row c
// is additionally multiplied by ω_n^(c·p) (the six-step twiddle phase).
func (f *fft) fftRows(ctx *threads.Ctx, tid int, m memlayout.Region, rows, l, sign int, twiddle bool, scale float64) error {
	r0, rcnt := BlockRange(rows, f.threads, tid)
	if rcnt == 0 {
		return nil
	}
	v, err := ctx.F32(m, 2*r0*l, 2*rcnt*l, vm.Write)
	if err != nil {
		return err
	}
	buf := make([]complex128, l)
	n := f.n()
	for i := 0; i < rcnt; i++ {
		row := r0 + i
		for j := 0; j < l; j++ {
			buf[j] = complex(float64(v.Get(2*(i*l+j))), float64(v.Get(2*(i*l+j)+1)))
		}
		fftInPlace(buf, sign)
		if twiddle {
			for p := 0; p < l; p++ {
				ang := float64(sign) * 2 * math.Pi * float64(row*p) / float64(n)
				buf[p] *= cmplx.Exp(complex(0, ang))
			}
		}
		for j := 0; j < l; j++ {
			x := buf[j] * complex(scale, 0)
			v.Set(2*(i*l+j), float32(real(x)))
			v.Set(2*(i*l+j)+1, float32(imag(x)))
		}
		ctx.Compute(5 * l * log2int(l))
	}
	return nil
}

// fftInPlace is an iterative radix-2 Cooley-Tukey FFT; sign -1 is the
// forward transform. len(a) must be a power of two.
func fftInPlace(a []complex128, sign int) {
	n := len(a)
	// Bit reversal.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := float64(sign) * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := a[i+j]
				t := a[i+j+length/2] * w
				a[i+j] = u + t
				a[i+j+length/2] = u - t
				w *= wl
			}
		}
	}
}

func log2int(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// check verifies the forward+inverse round trip reproduced the initial
// signal within float32 tolerance.
func (f *fft) check(ctx *threads.Ctx) error {
	n := f.n()
	v, err := ctx.F32(f.data, 0, 2*n, vm.Read)
	if err != nil {
		return err
	}
	var worst float64
	for j := 0; j < n; j++ {
		want := f.initial(j)
		dre := math.Abs(float64(v.Get(2*j)) - real(want))
		dim := math.Abs(float64(v.Get(2*j+1)) - imag(want))
		if dre > worst {
			worst = dre
		}
		if dim > worst {
			worst = dim
		}
	}
	if worst > 2e-3 {
		return fmt.Errorf("apps: %s: round-trip error %g", f.name, worst)
	}
	return nil
}
