package apps

import (
	"fmt"

	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// ocean models the SPLASH-2 Ocean simulation's memory behaviour: many
// (n+2)×(n+2) float64 grids relaxed with red-black nearest-neighbour
// stencils (the multigrid work arrays of the original), plus a
// lock-protected global residual reduction each iteration. Threads own
// contiguous row blocks across all fields, so the correlation maps show
// the banded nearest-neighbour diagonal over an all-to-all background
// (the reduction page) that the paper's Table 3 shows for Ocean. The
// paper's input is a 258×258 ocean (Table 1: 3191 shared pages ≈ 24
// double-precision grids plus control data).
type ocean struct {
	threads int
	iters   int
	g       int // grid edge including boundary
	fields  int
	verify  bool
	grids   memlayout.Region
	red     memlayout.Region // reduction cell + control
}

func newOcean(cfg Config) (*ocean, error) {
	// Test scale still admits 64 threads (bounded by interior rows).
	g, fields := 66, 3
	if cfg.Scale == ScalePaper {
		g, fields = 258, 24
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 6
	}
	if cfg.Threads > g-2 {
		return nil, fmt.Errorf("apps: Ocean: %d threads exceed %d interior rows", cfg.Threads, g-2)
	}
	return &ocean{
		threads: cfg.Threads,
		iters:   iters,
		g:       g,
		fields:  fields,
		verify:  cfg.Verify,
	}, nil
}

func (o *ocean) Name() string    { return "Ocean" }
func (o *ocean) Threads() int    { return o.threads }
func (o *ocean) Iterations() int { return o.iters }

func (o *ocean) Setup(l *memlayout.Layout) error {
	var err error
	if o.grids, err = l.Alloc("ocean.grids", o.fields*o.g*o.g*8); err != nil {
		return fmt.Errorf("apps: Ocean setup: %w", err)
	}
	if o.red, err = l.Alloc("ocean.reduction", 64); err != nil {
		return fmt.Errorf("apps: Ocean setup: %w", err)
	}
	return nil
}

const (
	oceanBoundary = 50.0
	oceanLock     = int32(9001)
)

func (o *ocean) fieldOff(f int) int { return f * o.g * o.g }

func (o *ocean) Body(tid int) threads.Body {
	return func(ctx *threads.Ctx) error {
		g := o.g
		if tid == 0 {
			v, err := ctx.F64(o.grids, 0, o.fields*g*g, vm.Write)
			if err != nil {
				return err
			}
			for f := 0; f < o.fields; f++ {
				base := o.fieldOff(f)
				hi := oceanBoundary * float64(f+1) / float64(o.fields)
				// Hot west boundary plus a seeded interior (an
				// all-zero interior makes relaxation writes
				// silent stores, hiding steady-state sharing).
				for i := 0; i < g; i++ {
					for j := 0; j < g; j++ {
						v.Set(base+i*g+j, hi*float64((i*31+j*17+f*7)%89)/89)
					}
				}
				for j := 0; j < g; j++ {
					v.Set(base+j*g, hi)
				}
			}
			ctx.Compute(o.fields * g * g)
		}
		ctx.Barrier()

		start, count := BlockRange(g-2, o.threads, tid)
		start++
		for iter := 0; iter < o.iters; iter++ {
			var localRes float64
			for phase := 0; phase < 2; phase++ {
				for f := 0; f < o.fields; f++ {
					res, err := o.relaxField(ctx, f, start, count, phase)
					if err != nil {
						return err
					}
					localRes += res
				}
				ctx.Barrier()
			}
			// Lock-protected residual reduction (the all-to-all
			// background sharing).
			if err := ctx.Lock(oceanLock); err != nil {
				return err
			}
			acc, err := ctx.F64(o.red, 0, 2, vm.Write)
			if err != nil {
				return err
			}
			acc.Set(0, acc.Get(0)+localRes)
			acc.Set(1, acc.Get(1)+1)
			if err := ctx.Unlock(oceanLock); err != nil {
				return err
			}
			ctx.Barrier()
			if tid == 0 {
				acc, err := ctx.F64(o.red, 0, 2, vm.Write)
				if err != nil {
					return err
				}
				if o.verify && iter == o.iters-1 {
					if got := acc.Get(1); got != float64(o.threads) {
						return fmt.Errorf("apps: Ocean: reduction saw %v contributions, want %d", got, o.threads)
					}
					if err := o.check(ctx); err != nil {
						return err
					}
				}
				acc.Set(0, 0)
				acc.Set(1, 0)
			}
			ctx.EndIteration()
		}
		return nil
	}
}

// relaxField runs one red-black colour phase on the thread's rows of one
// field and returns the local residual contribution.
func (o *ocean) relaxField(ctx *threads.Ctx, f, start, count, phase int) (float64, error) {
	g := o.g
	base := o.fieldOff(f)
	own, err := ctx.F64(o.grids, base+start*g, count*g, vm.Write)
	if err != nil {
		return 0, err
	}
	up, err := ctx.F64(o.grids, base+(start-1)*g, g, vm.Read)
	if err != nil {
		return 0, err
	}
	down, err := ctx.F64(o.grids, base+(start+count)*g, g, vm.Read)
	if err != nil {
		return 0, err
	}
	get := func(i, j int) float64 {
		switch {
		case i < 0:
			return up.Get(j)
		case i >= count:
			return down.Get(j)
		default:
			return own.Get(i*g + j)
		}
	}
	var res float64
	work := 0
	for i := 0; i < count; i++ {
		row := start + i
		for j := 1 + (row+phase)%2; j < g-1; j += 2 {
			v := 0.25 * (get(i-1, j) + get(i+1, j) + get(i, j-1) + get(i, j+1))
			d := v - own.Get(i*g+j)
			own.Set(i*g+j, own.Get(i*g+j)+d)
			res += d * d
			work++
		}
	}
	ctx.Compute(work * 6)
	return res, nil
}

// check verifies the maximum principle on every field.
func (o *ocean) check(ctx *threads.Ctx) error {
	g := o.g
	v, err := ctx.F64(o.grids, 0, o.fields*g*g, vm.Read)
	if err != nil {
		return err
	}
	for f := 0; f < o.fields; f++ {
		base := o.fieldOff(f)
		hi := oceanBoundary * float64(f+1) / float64(o.fields)
		for i := 1; i < g-1; i++ {
			for j := 1; j < g-1; j++ {
				x := v.Get(base + i*g + j)
				if x < 0 || x > hi {
					return fmt.Errorf("apps: Ocean: field %d cell (%d,%d) = %v outside [0,%v]", f, i, j, x, hi)
				}
			}
		}
	}
	return nil
}
