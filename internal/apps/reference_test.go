package apps

import (
	"testing"

	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// TestSORMatchesSequentialReference runs SOR on a 4-node DSM and compares
// the final grid bit-for-bit against a plain sequential red-black SOR:
// the coherence protocol must be completely invisible to the numerics.
// Red-black ordering makes the parallel and sequential update orders
// produce identical floating-point results.
func TestSORMatchesSequentialReference(t *testing.T) {
	const nthreads, nodes = 8, 4
	a, err := New("SOR", Config{Threads: nthreads})
	if err != nil {
		t.Fatal(err)
	}
	s := a.(*sor)
	rows, cols, iters := s.rows, s.cols, s.iters

	// Sequential reference, mirroring the app's init and relaxation.
	ref := make([]float32, rows*cols)
	for j := 0; j < cols; j++ {
		ref[j] = sorBoundary
	}
	for i := 1; i < rows; i++ {
		for j := 0; j < cols; j++ {
			ref[i*cols+j] = float32((i*37+j*11)%97) * sorBoundary / 97
		}
	}
	for iter := 0; iter < iters; iter++ {
		for phase := 0; phase < 2; phase++ {
			for i := 1; i < rows-1; i++ {
				for j := 1 + (i+phase)%2; j < cols-1; j += 2 {
					v := 0.25 * (ref[(i-1)*cols+j] + ref[(i+1)*cols+j] +
						ref[i*cols+j-1] + ref[i*cols+j+1])
					cur := ref[i*cols+j]
					ref[i*cols+j] = cur + s.omega*(v-cur)
				}
			}
		}
	}

	// DSM run.
	layout := memlayout.NewLayout()
	if err := a.Setup(layout); err != nil {
		t.Fatal(err)
	}
	cl, err := dsm.New(dsm.Config{Nodes: nodes, Pages: layout.TotalPages()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: nthreads, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(a.Body); err != nil {
		t.Fatal(err)
	}

	// Read the final grid through the DSM from an arbitrary node.
	b, _, err := cl.Span(2, 0, s.grid.Off, rows*cols*4, vm.Read)
	if err != nil {
		t.Fatal(err)
	}
	got := memlayout.ViewF32(b)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if g := got.Get(i*cols + j); g != ref[i*cols+j] {
				t.Fatalf("cell (%d,%d): dsm %v, reference %v", i, j, g, ref[i*cols+j])
			}
		}
	}
}

// TestLUMatchesSequentialReference factorizes the same matrix with a
// plain sequential blocked LU and compares every element exactly.
func TestLUMatchesSequentialReference(t *testing.T) {
	const nthreads, nodes = 4, 2
	a, err := New("LU1k", Config{Threads: nthreads})
	if err != nil {
		t.Fatal(err)
	}
	l := a.(*lu)
	n, bs, nb := l.n, l.b, l.nb

	// Sequential reference: identical blocked algorithm over a plain
	// array in block-major order.
	ref := make([]float32, n*n)
	at := func(bi, bj, i, j int) *float32 {
		return &ref[l.blockOff(bi, bj)+i*bs+j]
	}
	for bi := 0; bi < nb; bi++ {
		for bj := 0; bj < nb; bj++ {
			for i := 0; i < bs; i++ {
				for j := 0; j < bs; j++ {
					*at(bi, bj, i, j) = l.initial(bi*bs+i, bj*bs+j)
				}
			}
		}
	}
	for k := 0; k < nb; k++ {
		// Diagonal factorization.
		for p := 0; p < bs; p++ {
			piv := *at(k, k, p, p)
			for i := p + 1; i < bs; i++ {
				m := *at(k, k, i, p) / piv
				*at(k, k, i, p) = m
				for j := p + 1; j < bs; j++ {
					*at(k, k, i, j) -= m * *at(k, k, p, j)
				}
			}
		}
		// Panels.
		for bi := k + 1; bi < nb; bi++ {
			for i := 0; i < bs; i++ {
				for p := 0; p < bs; p++ {
					v := *at(bi, k, i, p)
					for q := 0; q < p; q++ {
						v -= *at(bi, k, i, q) * *at(k, k, q, p)
					}
					*at(bi, k, i, p) = v / *at(k, k, p, p)
				}
			}
		}
		for bj := k + 1; bj < nb; bj++ {
			for j := 0; j < bs; j++ {
				for p := 0; p < bs; p++ {
					v := *at(k, bj, p, j)
					for q := 0; q < p; q++ {
						v -= *at(k, k, p, q) * *at(k, bj, q, j)
					}
					*at(k, bj, p, j) = v
				}
			}
		}
		// Interior.
		for bi := k + 1; bi < nb; bi++ {
			for bj := k + 1; bj < nb; bj++ {
				for i := 0; i < bs; i++ {
					for p := 0; p < bs; p++ {
						m := *at(bi, k, i, p)
						if m == 0 {
							continue
						}
						for j := 0; j < bs; j++ {
							*at(bi, bj, i, j) -= m * *at(k, bj, p, j)
						}
					}
				}
			}
		}
	}

	layout := memlayout.NewLayout()
	if err := a.Setup(layout); err != nil {
		t.Fatal(err)
	}
	cl, err := dsm.New(dsm.Config{Nodes: nodes, Pages: layout.TotalPages()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: nthreads, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(a.Body); err != nil {
		t.Fatal(err)
	}
	b, _, err := cl.Span(1, 0, l.mat.Off, n*n*4, vm.Read)
	if err != nil {
		t.Fatal(err)
	}
	got := memlayout.ViewF32(b)
	for i := 0; i < n*n; i++ {
		if g := got.Get(i); g != ref[i] {
			t.Fatalf("element %d: dsm %v, reference %v", i, g, ref[i])
		}
	}
}
