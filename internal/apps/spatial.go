package apps

import (
	"fmt"
	"math"

	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// spatial models SPLASH-2 Water-Spatial: molecules binned into a g×g×g
// grid of cells (cell edge = interaction cutoff), with forces computed
// only against the 27 neighbouring cells. Threads own contiguous ranges of
// cells, so the force phase reads neighbour cells (3D nearest-neighbour
// sharing), while the re-binning phase moves migrating molecules between
// cells under per-cell locks and a lock-protected global kinetic-energy
// reduction adds light all-to-all sharing — the multiple distinct phase
// patterns the paper notes for Spatial. Paper input: 4096 molecules.
type spatial struct {
	threads int
	iters   int
	nmol    int
	g       int // cells per edge
	maxPer  int // slot capacity per cell
	verify  bool
	cells   memlayout.Region // per-slot: pos3, vel3, force3, pad3 = 12 f64
	occ     memlayout.Region // per-cell occupancy int32
	red     memlayout.Region // global reduction cell
}

// Slot layout in float64s.
const (
	sRec   = 12
	sPos   = 0
	sVel   = 3
	sForce = 6
)

const (
	spatialDT       = 5e-4
	spatialLockBase = int32(20000)
	spatialRedLock  = int32(19999)
)

func newSpatial(cfg Config) (*spatial, error) {
	nmol, g := 512, 6
	if cfg.Scale == ScalePaper {
		nmol, g = 4096, 8
	}
	ncells := g * g * g
	maxPer := 4 * (nmol/ncells + 1)
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 5
	}
	if cfg.Threads > ncells {
		return nil, fmt.Errorf("apps: Spatial: %d threads exceed %d cells", cfg.Threads, ncells)
	}
	return &spatial{
		threads: cfg.Threads,
		iters:   iters,
		nmol:    nmol,
		g:       g,
		maxPer:  maxPer,
		verify:  cfg.Verify,
	}, nil
}

func (s *spatial) Name() string    { return "Spatial" }
func (s *spatial) Threads() int    { return s.threads }
func (s *spatial) Iterations() int { return s.iters }

func (s *spatial) ncells() int { return s.g * s.g * s.g }

func (s *spatial) Setup(l *memlayout.Layout) error {
	var err error
	if s.cells, err = l.Alloc("spatial.cells", s.ncells()*s.maxPer*sRec*8); err != nil {
		return fmt.Errorf("apps: Spatial setup: %w", err)
	}
	if s.occ, err = l.Alloc("spatial.occ", s.ncells()*4); err != nil {
		return fmt.Errorf("apps: Spatial setup: %w", err)
	}
	if s.red, err = l.Alloc("spatial.red", 64); err != nil {
		return fmt.Errorf("apps: Spatial setup: %w", err)
	}
	return nil
}

// cellOf maps a position to its cell index, wrapping at box edges (box
// side = g, cell edge = 1).
func (s *spatial) cellOf(x, y, z float64) int {
	wrap := func(v float64) int {
		c := int(math.Floor(v))
		c %= s.g
		if c < 0 {
			c += s.g
		}
		return c
	}
	return (wrap(x)*s.g+wrap(y))*s.g + wrap(z)
}

func (s *spatial) slotOff(cell, slot int) int { return (cell*s.maxPer + slot) * sRec }

func (s *spatial) Body(tid int) threads.Body {
	return func(ctx *threads.Ctx) error {
		if tid == 0 {
			if err := s.initialize(ctx); err != nil {
				return err
			}
		}
		ctx.Barrier()
		start, count := BlockRange(s.ncells(), s.threads, tid)
		for iter := 0; iter < s.iters; iter++ {
			var localKE float64
			if err := s.forces(ctx, start, count); err != nil {
				return err
			}
			ctx.Barrier()
			ke, err := s.integrate(ctx, start, count)
			if err != nil {
				return err
			}
			localKE = ke
			ctx.Barrier()
			if err := s.rebin(ctx, start, count); err != nil {
				return err
			}
			// Global kinetic-energy reduction under a lock.
			if err := ctx.Lock(spatialRedLock); err != nil {
				return err
			}
			acc, err := ctx.F64(s.red, 0, 1, vm.Write)
			if err != nil {
				return err
			}
			acc.Set(0, acc.Get(0)+localKE)
			if err := ctx.Unlock(spatialRedLock); err != nil {
				return err
			}
			ctx.Barrier()
			if tid == 0 {
				acc, err := ctx.F64(s.red, 0, 1, vm.Write)
				if err != nil {
					return err
				}
				if s.verify && iter == s.iters-1 {
					if ke := acc.Get(0); math.IsNaN(ke) || math.IsInf(ke, 0) || ke < 0 {
						return fmt.Errorf("apps: Spatial: bad kinetic energy %v", ke)
					}
					if err := s.check(ctx); err != nil {
						return err
					}
				}
				acc.Set(0, 0)
			}
			ctx.EndIteration()
		}
		return nil
	}
}

func (s *spatial) initialize(ctx *threads.Ctx) error {
	occ, err := ctx.I32(s.occ, 0, s.ncells(), vm.Write)
	if err != nil {
		return err
	}
	cv, err := ctx.F64(s.cells, 0, s.ncells()*s.maxPer*sRec, vm.Write)
	if err != nil {
		return err
	}
	for i := 0; i < s.nmol; i++ {
		// Jittered lattice over the whole box.
		x := float64(s.g) * (float64(i%17)/17 + 0.01)
		y := float64(s.g) * (float64((i/17)%19)/19 + 0.02)
		z := float64(s.g) * (float64(i%23)/23 + 0.03)
		cell := s.cellOf(x, y, z)
		slot := int(occ.Get(cell))
		if slot >= s.maxPer {
			return fmt.Errorf("apps: Spatial: cell %d overflow at init", cell)
		}
		off := s.slotOff(cell, slot)
		cv.Set(off+sPos, x)
		cv.Set(off+sPos+1, y)
		cv.Set(off+sPos+2, z)
		// Small deterministic initial velocity.
		cv.Set(off+sVel, 0.05*(float64(i%7)/7-0.5))
		cv.Set(off+sVel+1, 0.05*(float64(i%11)/11-0.5))
		cv.Set(off+sVel+2, 0.05*(float64(i%13)/13-0.5))
		occ.Set(cell, int32(slot+1))
	}
	ctx.Compute(s.nmol * 10)
	return nil
}

// neighbours lists cell and its 26 neighbours (wrapping).
func (s *spatial) neighbours(cell int) []int {
	g := s.g
	cx, cy, cz := cell/(g*g), (cell/g)%g, cell%g
	out := make([]int, 0, 27)
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for dz := -1; dz <= 1; dz++ {
				x, y, z := (cx+dx+g)%g, (cy+dy+g)%g, (cz+dz+g)%g
				out = append(out, (x*g+y)*g+z)
			}
		}
	}
	return out
}

// forces computes forces on molecules of owned cells from molecules in the
// 27-cell neighbourhood (reads of neighbour cells are the sharing).
func (s *spatial) forces(ctx *threads.Ctx, start, count int) error {
	occAll, err := ctx.I32(s.occ, 0, s.ncells(), vm.Read)
	if err != nil {
		return err
	}
	for cell := start; cell < start+count; cell++ {
		n := int(occAll.Get(cell))
		if n == 0 {
			continue
		}
		own, err := ctx.F64(s.cells, s.slotOff(cell, 0), s.maxPer*sRec, vm.Write)
		if err != nil {
			return err
		}
		work := 0
		for _, nb := range s.neighbours(cell) {
			m := int(occAll.Get(nb))
			if m == 0 {
				continue
			}
			nbv, err := ctx.F64(s.cells, s.slotOff(nb, 0), s.maxPer*sRec, vm.Read)
			if err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				xi := own.Get(i*sRec + sPos)
				yi := own.Get(i*sRec + sPos + 1)
				zi := own.Get(i*sRec + sPos + 2)
				for j := 0; j < m; j++ {
					if nb == cell && j == i {
						continue
					}
					fx, fy, fz := pairForce(xi, yi, zi,
						nbv.Get(j*sRec+sPos), nbv.Get(j*sRec+sPos+1), nbv.Get(j*sRec+sPos+2))
					own.Set(i*sRec+sForce, own.Get(i*sRec+sForce)+fx)
					own.Set(i*sRec+sForce+1, own.Get(i*sRec+sForce+1)+fy)
					own.Set(i*sRec+sForce+2, own.Get(i*sRec+sForce+2)+fz)
					work++
				}
			}
		}
		ctx.Compute(work * 12)
	}
	return nil
}

// integrate advances owned molecules and returns local kinetic energy.
func (s *spatial) integrate(ctx *threads.Ctx, start, count int) (float64, error) {
	occAll, err := ctx.I32(s.occ, start, count, vm.Read)
	if err != nil {
		return 0, err
	}
	var ke float64
	for c := 0; c < count; c++ {
		cell := start + c
		n := int(occAll.Get(c))
		if n == 0 {
			continue
		}
		v, err := ctx.F64(s.cells, s.slotOff(cell, 0), s.maxPer*sRec, vm.Write)
		if err != nil {
			return 0, err
		}
		for i := 0; i < n; i++ {
			off := i * sRec
			for d := 0; d < 3; d++ {
				vel := v.Get(off+sVel+d) + v.Get(off+sForce+d)*spatialDT
				v.Set(off+sVel+d, vel)
				p := v.Get(off+sPos+d) + vel*spatialDT
				// Wrap into the box.
				box := float64(s.g)
				if p < 0 {
					p += box
				} else if p >= box {
					p -= box
				}
				v.Set(off+sPos+d, p)
				v.Set(off+sForce+d, 0)
				ke += 0.5 * vel * vel
			}
		}
		ctx.Compute(n * 15)
	}
	return ke, nil
}

// rebin moves molecules that left their cell into the correct cell,
// locking both cells involved in each move (ordered by cell index to
// avoid lock-order inversion; the engine's global lock table serializes
// anyway, but the discipline matches what a real DSM program needs).
func (s *spatial) rebin(ctx *threads.Ctx, start, count int) error {
	for cell := start; cell < start+count; cell++ {
		occ, err := ctx.I32(s.occ, cell, 1, vm.Read)
		if err != nil {
			return err
		}
		n := int(occ.Get(0))
		for i := 0; i < n; i++ {
			v, err := ctx.F64(s.cells, s.slotOff(cell, i), sRec, vm.Read)
			if err != nil {
				return err
			}
			dest := s.cellOf(v.Get(sPos), v.Get(sPos+1), v.Get(sPos+2))
			if dest == cell {
				continue
			}
			if err := s.moveMolecule(ctx, cell, i, dest); err != nil {
				return err
			}
			// The compaction swapped the last molecule into slot
			// i; revisit it.
			n--
			i--
		}
	}
	return nil
}

func (s *spatial) moveMolecule(ctx *threads.Ctx, from, slot, to int) error {
	lo, hi := from, to
	if lo > hi {
		lo, hi = hi, lo
	}
	if err := ctx.Lock(spatialLockBase + int32(lo)); err != nil {
		return err
	}
	if err := ctx.Lock(spatialLockBase + int32(hi)); err != nil {
		return err
	}
	defer func() {
		_ = ctx.Unlock(spatialLockBase + int32(hi))
		_ = ctx.Unlock(spatialLockBase + int32(lo))
	}()

	occ, err := ctx.I32(s.occ, 0, s.ncells(), vm.Write)
	if err != nil {
		return err
	}
	nFrom := int(occ.Get(from))
	nTo := int(occ.Get(to))
	if nTo >= s.maxPer {
		return fmt.Errorf("apps: Spatial: cell %d overflow during rebin", to)
	}
	src, err := ctx.F64(s.cells, s.slotOff(from, 0), s.maxPer*sRec, vm.Write)
	if err != nil {
		return err
	}
	dst, err := ctx.F64(s.cells, s.slotOff(to, 0), s.maxPer*sRec, vm.Write)
	if err != nil {
		return err
	}
	for d := 0; d < sRec; d++ {
		dst.Set(nTo*sRec+d, src.Get(slot*sRec+d))
	}
	// Compact source: move last slot into the vacated one.
	if slot != nFrom-1 {
		for d := 0; d < sRec; d++ {
			src.Set(slot*sRec+d, src.Get((nFrom-1)*sRec+d))
		}
	}
	occ.Set(from, int32(nFrom-1))
	occ.Set(to, int32(nTo+1))
	ctx.Compute(2 * sRec)
	return nil
}

// check verifies molecule conservation and that every stored molecule is
// inside the box and binned in the right cell.
func (s *spatial) check(ctx *threads.Ctx) error {
	occ, err := ctx.I32(s.occ, 0, s.ncells(), vm.Read)
	if err != nil {
		return err
	}
	cv, err := ctx.F64(s.cells, 0, s.ncells()*s.maxPer*sRec, vm.Read)
	if err != nil {
		return err
	}
	total := 0
	for cell := 0; cell < s.ncells(); cell++ {
		n := int(occ.Get(cell))
		if n < 0 || n > s.maxPer {
			return fmt.Errorf("apps: Spatial: cell %d occupancy %d", cell, n)
		}
		total += n
		for i := 0; i < n; i++ {
			off := s.slotOff(cell, i)
			x, y, z := cv.Get(off+sPos), cv.Get(off+sPos+1), cv.Get(off+sPos+2)
			if s.cellOf(x, y, z) != cell {
				return fmt.Errorf("apps: Spatial: molecule in cell %d binned wrong (%v,%v,%v)", cell, x, y, z)
			}
		}
	}
	if total != s.nmol {
		return fmt.Errorf("apps: Spatial: %d molecules, want %d", total, s.nmol)
	}
	return nil
}
