package apps

import (
	"fmt"

	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// sor is red-black successive over-relaxation on a rows×cols float32 grid.
// Threads own contiguous row blocks; each phase reads one halo row above
// and below, giving the pure nearest-neighbour sharing of the paper's SOR
// correlation maps (Table 3). The paper's input is 2048×2048.
type sor struct {
	name    string
	threads int
	iters   int
	rows    int
	cols    int
	omega   float32
	verify  bool
	grid    memlayout.Region
}

func newSOR(cfg Config) (*sor, error) {
	// Test scale still admits the paper's 64-thread configurations
	// (threads are bounded by interior rows).
	rows, cols := 128, 128
	if cfg.Scale == ScalePaper {
		rows, cols = 2048, 2048
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 10
	}
	if cfg.Threads > rows-2 {
		return nil, fmt.Errorf("apps: SOR: %d threads exceed %d interior rows", cfg.Threads, rows-2)
	}
	return &sor{
		name:    "SOR",
		threads: cfg.Threads,
		iters:   iters,
		rows:    rows,
		cols:    cols,
		omega:   1.0,
		verify:  cfg.Verify,
	}, nil
}

func (s *sor) Name() string    { return s.name }
func (s *sor) Threads() int    { return s.threads }
func (s *sor) Iterations() int { return s.iters }

func (s *sor) Setup(l *memlayout.Layout) error {
	var err error
	s.grid, err = l.Alloc("sor.grid", s.rows*s.cols*4)
	if err != nil {
		return fmt.Errorf("apps: SOR setup: %w", err)
	}
	return nil
}

// boundaryValue is the fixed Dirichlet boundary on the top row.
const sorBoundary = 100.0

func (s *sor) Body(tid int) threads.Body {
	return func(ctx *threads.Ctx) error {
		rows, cols := s.rows, s.cols
		if tid == 0 {
			// Top boundary hot; interior seeded with deterministic
			// mid-range values so every relaxation genuinely
			// changes every cell (all-zero interiors make writes
			// silent stores and hide the steady-state sharing).
			v, err := ctx.F32(s.grid, 0, rows*cols, vm.Write)
			if err != nil {
				return err
			}
			for j := 0; j < cols; j++ {
				v.Set(j, sorBoundary)
			}
			for i := 1; i < rows; i++ {
				for j := 0; j < cols; j++ {
					v.Set(i*cols+j, float32((i*37+j*11)%97)*sorBoundary/97)
				}
			}
			ctx.Compute(rows * cols)
		}
		ctx.Barrier()

		// Interior rows 1..rows-2 split among threads.
		start, count := BlockRange(rows-2, s.threads, tid)
		start++ // skip boundary row 0
		for iter := 0; iter < s.iters; iter++ {
			for phase := 0; phase < 2; phase++ {
				if err := s.relax(ctx, start, count, phase); err != nil {
					return err
				}
				if phase == 0 {
					ctx.Barrier()
				}
			}
			if s.verify && tid == 0 && iter == s.iters-1 {
				if err := s.check(ctx); err != nil {
					return err
				}
			}
			ctx.EndIteration()
		}
		return nil
	}
}

// relax updates the phase-coloured cells of the thread's rows in place.
// Red-black colouring makes the in-place update race-free: a phase only
// reads cells of the other colour.
func (s *sor) relax(ctx *threads.Ctx, start, count, phase int) error {
	cols := s.cols
	// Own rows writable; halo rows readable. The halo spans trigger the
	// cross-thread page sharing the correlation maps show.
	own, err := ctx.F32(s.grid, start*cols, count*cols, vm.Write)
	if err != nil {
		return err
	}
	up, err := ctx.F32(s.grid, (start-1)*cols, cols, vm.Read)
	if err != nil {
		return err
	}
	down, err := ctx.F32(s.grid, (start+count)*cols, cols, vm.Read)
	if err != nil {
		return err
	}
	get := func(i, j int) float32 {
		switch {
		case i < 0:
			return up.Get(j)
		case i >= count:
			return down.Get(j)
		default:
			return own.Get(i*cols + j)
		}
	}
	work := 0
	for i := 0; i < count; i++ {
		row := start + i
		for j := 1 + (row+phase)%2; j < cols-1; j += 2 {
			v := 0.25 * (get(i-1, j) + get(i+1, j) + get(i, j-1) + get(i, j+1))
			cur := own.Get(i*cols + j)
			own.Set(i*cols+j, cur+s.omega*(v-cur))
			work++
		}
	}
	ctx.Compute(work * 5)
	return nil
}

// check verifies the discrete maximum principle: every interior value lies
// within the boundary's range [0, sorBoundary], and the boundary rows are
// untouched.
func (s *sor) check(ctx *threads.Ctx) error {
	all, err := ctx.F32(s.grid, 0, s.rows*s.cols, vm.Read)
	if err != nil {
		return err
	}
	for j := 0; j < s.cols; j++ {
		if got := all.Get(j); got != sorBoundary {
			return fmt.Errorf("apps: SOR: boundary cell %d = %v, want %v", j, got, sorBoundary)
		}
	}
	for i := 1; i < s.rows-1; i++ {
		for j := 1; j < s.cols-1; j++ {
			v := all.Get(i*s.cols + j)
			if v < 0 || v > sorBoundary {
				return fmt.Errorf("apps: SOR: cell (%d,%d) = %v violates maximum principle", i, j, v)
			}
		}
	}
	// The heat must actually have diffused into the first interior row.
	var sum float32
	for j := 1; j < s.cols-1; j++ {
		sum += all.Get(s.cols + j)
	}
	if sum <= 0 {
		return fmt.Errorf("apps: SOR: no diffusion after %d iterations", s.iters)
	}
	return nil
}
