package apps

import (
	"math"
	"math/cmplx"
	"strings"
	"testing"

	"actdsm/internal/dsm"
	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
)

// runApp builds the named app at test scale with verification enabled and
// runs it on a fresh cluster, failing the test on any error.
func runApp(t *testing.T, name string, nthreads, nodes int) {
	t.Helper()
	a, err := New(name, Config{Threads: nthreads, Verify: true, Scale: ScaleTest})
	if err != nil {
		t.Fatal(err)
	}
	l := memlayout.NewLayout()
	if err := a.Setup(l); err != nil {
		t.Fatal(err)
	}
	cl, err := dsm.New(dsm.Config{Nodes: nodes, Pages: l.TotalPages()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: nthreads, SchedulerEnabled: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(a.Body); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if e.Iteration() != a.Iterations() {
		t.Fatalf("%s: %d iterations ran, want %d", name, e.Iteration(), a.Iterations())
	}
	if cl.Stats().Snapshot().RemoteMisses == 0 {
		t.Fatalf("%s: no remote misses — not actually distributed?", name)
	}
}

func TestSORRuns(t *testing.T)     { runApp(t, "SOR", 8, 4) }
func TestLU1kRuns(t *testing.T)    { runApp(t, "LU1k", 8, 4) }
func TestLU2kRuns(t *testing.T)    { runApp(t, "LU2k", 8, 4) }
func TestFFT6Runs(t *testing.T)    { runApp(t, "FFT6", 8, 4) }
func TestFFT7Runs(t *testing.T)    { runApp(t, "FFT7", 8, 4) }
func TestFFT8Runs(t *testing.T)    { runApp(t, "FFT8", 8, 4) }
func TestOceanRuns(t *testing.T)   { runApp(t, "Ocean", 8, 4) }
func TestWaterRuns(t *testing.T)   { runApp(t, "Water", 8, 4) }
func TestSpatialRuns(t *testing.T) { runApp(t, "Spatial", 8, 4) }
func TestBarnesRuns(t *testing.T)  { runApp(t, "Barnes", 8, 4) }

func TestAppsOddThreadCounts(t *testing.T) {
	// The paper's 48-thread configurations exercise non-power-of-two
	// imbalance; 6 threads on 4 nodes is the test-scale analogue.
	for _, name := range []string{"SOR", "FFT6", "Water"} {
		runApp(t, name, 6, 4)
	}
}

func TestAppsSingleNode(t *testing.T) {
	// Everything must also run entirely local (no remote misses
	// required there, so bypass runApp).
	a, err := New("SOR", Config{Threads: 4, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	l := memlayout.NewLayout()
	if err := a.Setup(l); err != nil {
		t.Fatal(err)
	}
	cl, err := dsm.New(dsm.Config{Nodes: 1, Pages: l.TotalPages()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	e, err := threads.NewEngine(cl, threads.Config{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(a.Body); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("nope", Config{Threads: 4}); err == nil {
		t.Fatal("expected unknown-app error")
	}
	if _, err := New("SOR", Config{Threads: 0}); err == nil {
		t.Fatal("expected thread-count error")
	}
	if _, err := New("SOR", Config{Threads: 10000}); err == nil {
		t.Fatal("expected too-many-threads error")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	want := []string{"Barnes", "FFT6", "FFT7", "FFT8", "LU1k", "LU2k", "Ocean", "SOR", "Spatial", "Water"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	if strings.Join(names, ",") == "" {
		t.Fatal("empty names")
	}
}

func TestBlockRange(t *testing.T) {
	cases := []struct {
		n, parts, idx    int
		wantStart, wantN int
	}{
		{10, 2, 0, 0, 5},
		{10, 2, 1, 5, 5},
		{10, 3, 0, 0, 4},
		{10, 3, 1, 4, 3},
		{10, 3, 2, 7, 3},
		{2, 4, 3, 2, 0},
	}
	for _, c := range cases {
		s, n := BlockRange(c.n, c.parts, c.idx)
		if s != c.wantStart || n != c.wantN {
			t.Fatalf("BlockRange(%d,%d,%d) = (%d,%d), want (%d,%d)",
				c.n, c.parts, c.idx, s, n, c.wantStart, c.wantN)
		}
	}
	// Coverage: blocks tile [0,n) exactly.
	for n := 1; n < 50; n++ {
		for parts := 1; parts <= 8; parts++ {
			pos := 0
			for idx := 0; idx < parts; idx++ {
				s, c := BlockRange(n, parts, idx)
				if s != pos {
					t.Fatalf("gap at n=%d parts=%d idx=%d", n, parts, idx)
				}
				pos += c
			}
			if pos != n {
				t.Fatalf("blocks cover %d of %d (parts=%d)", pos, n, parts)
			}
		}
	}
}

func TestThreadGrid(t *testing.T) {
	cases := []struct{ t, pr, pc int }{
		{64, 8, 8}, {48, 6, 8}, {32, 4, 8}, {1, 1, 1}, {7, 1, 7}, {12, 3, 4},
	}
	for _, c := range cases {
		pr, pc := threadGrid(c.t)
		if pr != c.pr || pc != c.pc {
			t.Fatalf("threadGrid(%d) = %d×%d, want %d×%d", c.t, pr, pc, c.pr, c.pc)
		}
	}
}

func TestFFTInPlaceMatchesDirectDFT(t *testing.T) {
	n := 16
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(float64(i%5)-2, float64(i%3)-1)
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(j*k) / float64(n)
			want[k] += a[j] * cmplx.Exp(complex(0, ang))
		}
	}
	got := append([]complex128(nil), a...)
	fftInPlace(got, -1)
	for k := 0; k < n; k++ {
		if cmplx.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("X[%d] = %v, want %v", k, got[k], want[k])
		}
	}
	// Inverse round trip.
	fftInPlace(got, +1)
	for j := 0; j < n; j++ {
		if cmplx.Abs(got[j]/complex(float64(n), 0)-a[j]) > 1e-9 {
			t.Fatalf("inverse round-trip failed at %d", j)
		}
	}
}

func TestPairForceAntisymmetric(t *testing.T) {
	fx, fy, fz := pairForce(0, 0, 0, 1, 2, 3)
	gx, gy, gz := pairForce(1, 2, 3, 0, 0, 0)
	if fx != -gx || fy != -gy || fz != -gz {
		t.Fatalf("pair force not antisymmetric: (%v,%v,%v) vs (%v,%v,%v)", fx, fy, fz, gx, gy, gz)
	}
}

func TestSharedPagesPaperScale(t *testing.T) {
	// Table 1 comparison: our page counts should be the same order of
	// magnitude as the paper's. Exact matches aren't expected (region
	// padding, record-size approximations).
	paper := map[string]int{
		"Barnes": 251, "FFT6": 1796, "FFT7": 3588, "FFT8": 7172,
		"LU1k": 1032, "LU2k": 4105, "Ocean": 3191, "Spatial": 569,
		"SOR": 4099, "Water": 44,
	}
	for name, want := range paper {
		a, err := New(name, Config{Threads: 64, Scale: ScalePaper})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SharedPages(a)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := want/4, want*4
		if got < lo || got > hi {
			t.Errorf("%s: %d shared pages, paper has %d (allowing 4x)", name, got, want)
		}
	}
}

func TestSpatialCellOf(t *testing.T) {
	s := &spatial{g: 4}
	if c := s.cellOf(0.5, 0.5, 0.5); c != 0 {
		t.Fatalf("cellOf origin = %d", c)
	}
	if c := s.cellOf(3.9, 3.9, 3.9); c != 63 {
		t.Fatalf("cellOf corner = %d", c)
	}
	// Wrapping.
	if c := s.cellOf(-0.1, 0, 0); c != s.cellOf(3.9, 0, 0) {
		t.Fatal("negative wrap broken")
	}
	if c := s.cellOf(4.0, 0, 0); c != 0 {
		t.Fatalf("overflow wrap = %d", c)
	}
}

func TestSpatialNeighbours(t *testing.T) {
	s := &spatial{g: 4}
	nb := s.neighbours(0)
	if len(nb) != 27 {
		t.Fatalf("neighbours = %d", len(nb))
	}
	seen := map[int]bool{}
	for _, c := range nb {
		if c < 0 || c >= 64 || seen[c] {
			t.Fatalf("bad neighbour set %v", nb)
		}
		seen[c] = true
	}
}

func TestOctantAndChildCenter(t *testing.T) {
	c := [3]float64{0, 0, 0}
	if o := octant(c, [3]float64{1, 1, 1}); o != 7 {
		t.Fatalf("octant = %d", o)
	}
	if o := octant(c, [3]float64{-1, -1, -1}); o != 0 {
		t.Fatalf("octant = %d", o)
	}
	cc := childCenter(c, 2, 7)
	if cc != [3]float64{1, 1, 1} {
		t.Fatalf("childCenter = %v", cc)
	}
}
