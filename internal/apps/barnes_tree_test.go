package apps

import (
	"math"
	"testing"
	"testing/quick"
)

// buildTestTree inserts bodies into an octree rooted at a box containing
// them all, mirroring barnes.buildTree's private construction.
func buildTestTree(t *testing.T, pos [][3]float64, masses []float64) []treeNode {
	t.Helper()
	b := &barnes{nbody: len(pos), maxNodes: 8 * (len(pos) + 1)}
	var lo, hi [3]float64
	for d := 0; d < 3; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range pos {
		for d := 0; d < 3; d++ {
			lo[d] = math.Min(lo[d], p[d])
			hi[d] = math.Max(hi[d], p[d])
		}
	}
	var center [3]float64
	half := 1e-9
	for d := 0; d < 3; d++ {
		center[d] = (lo[d] + hi[d]) / 2
		half = math.Max(half, (hi[d]-lo[d])/2+1e-9)
	}
	nodes := []treeNode{newTreeNode(center, half)}
	for i := range pos {
		var err error
		nodes, err = b.insert(nodes, 0, int32(i), pos[i], masses[i], 0)
		if err != nil {
			t.Fatalf("insert body %d: %v", i, err)
		}
	}
	computeCOM(nodes, 0)
	return nodes
}

func TestBarnesTreeMassConservation(t *testing.T) {
	check := func(seeds []uint16) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 100 {
			seeds = seeds[:100]
		}
		var pos [][3]float64
		var masses []float64
		var total float64
		seen := map[[3]float64]bool{}
		for _, s := range seeds {
			p := [3]float64{
				float64(s%97) - 48,
				float64((s/7)%89) - 44,
				float64((s/13)%83) - 41,
			}
			if seen[p] {
				continue // coincident bodies are rejected by design
			}
			seen[p] = true
			pos = append(pos, p)
			m := 1 + float64(s%5)
			masses = append(masses, m)
			total += m
		}
		if len(pos) == 0 {
			return true
		}
		nodes := buildTestTree(t, pos, masses)
		return math.Abs(nodes[0].mass-total) < 1e-9*math.Max(total, 1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBarnesTreeContainsAllBodies(t *testing.T) {
	pos := [][3]float64{
		{0, 0, 0}, {1, 1, 1}, {-1, -1, -1}, {1, -1, 0}, {0.5, 0.5, 0.5},
	}
	masses := []float64{1, 2, 3, 4, 5}
	nodes := buildTestTree(t, pos, masses)
	// Count leaves; each body must appear exactly once.
	seen := make([]bool, len(pos))
	var walk func(ni int)
	walk = func(ni int) {
		n := &nodes[ni]
		if n.leafBody >= 0 {
			if seen[n.leafBody] {
				t.Fatalf("body %d appears twice", n.leafBody)
			}
			seen[n.leafBody] = true
			return
		}
		for _, c := range n.children {
			if c >= 0 {
				walk(int(c))
			}
		}
	}
	walk(0)
	for i, s := range seen {
		if !s {
			t.Fatalf("body %d missing from tree", i)
		}
	}
}

func TestBarnesTreeCOMMatchesDirect(t *testing.T) {
	pos := [][3]float64{{2, 0, 0}, {-2, 0, 0}, {0, 4, 0}}
	masses := []float64{1, 1, 2}
	nodes := buildTestTree(t, pos, masses)
	// Direct COM: x = (2-2+0)/4 = 0, y = (0+0+8)/4 = 2.
	if math.Abs(nodes[0].com[0]) > 1e-12 || math.Abs(nodes[0].com[1]-2) > 1e-12 {
		t.Fatalf("root COM = %v", nodes[0].com)
	}
}

func TestBarnesTreeCoincidentBodiesDepthCap(t *testing.T) {
	// Two bodies at the same position must hit the depth guard, not
	// recurse forever.
	b := &barnes{nbody: 2, maxNodes: 1024}
	nodes := []treeNode{newTreeNode([3]float64{0, 0, 0}, 1)}
	var err error
	nodes, err = b.insert(nodes, 0, 0, [3]float64{0.1, 0.1, 0.1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.insert(nodes, 0, 1, [3]float64{0.1, 0.1, 0.1}, 1, 0)
	if err == nil {
		t.Fatal("expected depth-cap error for coincident bodies")
	}
}

func TestBarnesTreeNodeCountBounded(t *testing.T) {
	// A well-spread distribution stays within ~3n nodes (the Setup
	// region bound).
	n := 200
	pos := make([][3]float64, n)
	masses := make([]float64, n)
	for i := range pos {
		pos[i] = [3]float64{
			float64(i%29) * 1.01,
			float64((i*7)%31) * 0.97,
			float64((i*13)%37) * 1.03,
		}
		masses[i] = 1
	}
	nodes := buildTestTree(t, pos, masses)
	if len(nodes) > 3*n {
		t.Fatalf("tree has %d nodes for %d bodies", len(nodes), n)
	}
}
