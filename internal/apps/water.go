package apps

import (
	"fmt"
	"math"

	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// water models SPLASH-2 Water-Nsquared: n molecules with O(n²/2) pairwise
// interactions. Each thread owns a contiguous molecule block and computes
// the interactions between its molecules and the following n/2 molecules
// (wrapping), accumulating partner forces privately and merging them into
// the shared force fields under per-block locks. Every thread therefore
// reads the positions of half the molecule array starting at its own block
// — producing the paper's distinctive Water correlation map, where
// nearest-neighbour sharing starts high, decreases with distance, and
// rises again as the half-window wraps.
//
// A molecule record is 42 float64s (336 bytes), matching Table 1's 44
// shared pages for 512 molecules.
type water struct {
	threads int
	iters   int
	nmol    int
	verify  bool
	mol     memlayout.Region
}

// Molecule record layout in float64 slots.
const (
	wRec   = 42 // slots per molecule
	wPos   = 0  // 3 atom positions × 3 coords
	wVel   = 9
	wForce = 18
	wAcc   = 27 // previous-step force for Verlet-style integration
	wMisc  = 36 // 6 spare slots (potential terms in the original)
)

const (
	waterDT       = 1e-3
	waterLockBase = int32(7000)
)

func newWater(cfg Config) (*water, error) {
	nmol := 256
	if cfg.Scale == ScalePaper {
		nmol = 512
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 5
	}
	if cfg.Threads > nmol {
		return nil, fmt.Errorf("apps: Water: %d threads exceed %d molecules", cfg.Threads, nmol)
	}
	return &water{threads: cfg.Threads, iters: iters, nmol: nmol, verify: cfg.Verify}, nil
}

func (w *water) Name() string    { return "Water" }
func (w *water) Threads() int    { return w.threads }
func (w *water) Iterations() int { return w.iters }

func (w *water) Setup(l *memlayout.Layout) error {
	var err error
	w.mol, err = l.Alloc("water.mol", w.nmol*wRec*8)
	if err != nil {
		return fmt.Errorf("apps: Water setup: %w", err)
	}
	return nil
}

// initPos places molecule centres on a jittered lattice.
func (w *water) initPos(i int) (x, y, z float64) {
	side := int(math.Cbrt(float64(w.nmol))) + 1
	x = float64(i%side) + 0.3*float64((i*7)%10)/10
	y = float64((i/side)%side) + 0.3*float64((i*13)%10)/10
	z = float64(i/(side*side)) + 0.3*float64((i*29)%10)/10
	return x, y, z
}

func (w *water) Body(tid int) threads.Body {
	return func(ctx *threads.Ctx) error {
		if tid == 0 {
			v, err := ctx.F64(w.mol, 0, w.nmol*wRec, vm.Write)
			if err != nil {
				return err
			}
			for i := 0; i < w.nmol; i++ {
				x, y, z := w.initPos(i)
				base := i * wRec
				// Three atoms at small rigid offsets around the
				// centre.
				for a := 0; a < 3; a++ {
					v.Set(base+wPos+3*a, x+0.05*float64(a))
					v.Set(base+wPos+3*a+1, y-0.05*float64(a))
					v.Set(base+wPos+3*a+2, z)
				}
			}
			ctx.Compute(w.nmol * wRec)
		}
		ctx.Barrier()

		start, count := BlockRange(w.nmol, w.threads, tid)
		window := w.nmol / 2
		for iter := 0; iter < w.iters; iter++ {
			// Force phase: private accumulation over own block ×
			// half-window.
			contrib := make(map[int][3]float64)
			if err := w.forces(ctx, start, count, window, contrib); err != nil {
				return err
			}
			ctx.Barrier()
			// Merge phase: per-block locks serialize updates to
			// each owner's force fields.
			if err := w.merge(ctx, contrib); err != nil {
				return err
			}
			ctx.Barrier()
			// Integrate own molecules.
			if err := w.integrate(ctx, start, count); err != nil {
				return err
			}
			if w.verify && iter == w.iters-1 {
				ctx.Barrier()
				if tid == 0 {
					if err := w.check(ctx); err != nil {
						return err
					}
				}
			}
			ctx.EndIteration()
		}
		return nil
	}
}

// pairForce is a capped inverse-square attraction/repulsion between
// molecule centres.
func pairForce(xi, yi, zi, xj, yj, zj float64) (fx, fy, fz float64) {
	dx, dy, dz := xj-xi, yj-yi, zj-zi
	r2 := dx*dx + dy*dy + dz*dz + 0.25 // softened
	inv := 1 / (r2 * math.Sqrt(r2))
	// Repulsive core, weak attraction tail.
	s := inv - 0.02/r2
	return s * dx, s * dy, s * dz
}

func (w *water) forces(ctx *threads.Ctx, start, count, window int, contrib map[int][3]float64) error {
	// Read the half-window of positions beginning at our block. The
	// window wraps, so read as up to two spans.
	for _, i := range rangeOwned(start, count) {
		base := i * wRec
		me, err := ctx.F64(w.mol, base+wPos, 3, vm.Read)
		if err != nil {
			return err
		}
		xi, yi, zi := me.Get(0), me.Get(1), me.Get(2)
		for k := 1; k <= window; k++ {
			j := (i + k) % w.nmol
			// With an even molecule count the k = n/2 pair would
			// be visited from both ends; keep only one.
			if k == window && w.nmol%2 == 0 && i > j {
				continue
			}
			other, err := ctx.F64(w.mol, j*wRec+wPos, 3, vm.Read)
			if err != nil {
				return err
			}
			fx, fy, fz := pairForce(xi, yi, zi, other.Get(0), other.Get(1), other.Get(2))
			ci := contrib[i]
			contrib[i] = [3]float64{ci[0] + fx, ci[1] + fy, ci[2] + fz}
			cj := contrib[j]
			contrib[j] = [3]float64{cj[0] - fx, cj[1] - fy, cj[2] - fz}
		}
		ctx.Compute(window * 12)
	}
	return nil
}

func rangeOwned(start, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = start + i
	}
	return out
}

// merge adds this thread's private force contributions into the shared
// force fields under the owning block's lock.
func (w *water) merge(ctx *threads.Ctx, contrib map[int][3]float64) error {
	// Group contributions by owning thread block for lock batching.
	byBlock := make(map[int][]int)
	for mol := range contrib {
		b := w.blockOf(mol)
		byBlock[b] = append(byBlock[b], mol)
	}
	// Deterministic lock order avoids spurious ordering differences.
	for b := 0; b < w.threads; b++ {
		mols, ok := byBlock[b]
		if !ok {
			continue
		}
		if err := ctx.Lock(waterLockBase + int32(b)); err != nil {
			return err
		}
		for _, mol := range mols {
			f := contrib[mol]
			fv, err := ctx.F64(w.mol, mol*wRec+wForce, 3, vm.Write)
			if err != nil {
				return err
			}
			fv.Set(0, fv.Get(0)+f[0])
			fv.Set(1, fv.Get(1)+f[1])
			fv.Set(2, fv.Get(2)+f[2])
		}
		if err := ctx.Unlock(waterLockBase + int32(b)); err != nil {
			return err
		}
		ctx.Compute(len(mols) * 6)
	}
	return nil
}

// blockOf returns the thread owning a molecule under BlockRange.
func (w *water) blockOf(mol int) int {
	for t := 0; t < w.threads; t++ {
		s, c := BlockRange(w.nmol, w.threads, t)
		if mol >= s && mol < s+c {
			return t
		}
	}
	return w.threads - 1
}

func (w *water) integrate(ctx *threads.Ctx, start, count int) error {
	v, err := ctx.F64(w.mol, start*wRec, count*wRec, vm.Write)
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		base := i * wRec
		for d := 0; d < 3; d++ {
			f := v.Get(base + wForce + d)
			vel := v.Get(base+wVel+d) + f*waterDT
			v.Set(base+wVel+d, vel)
			// Move all three atoms rigidly.
			for a := 0; a < 3; a++ {
				p := v.Get(base + wPos + 3*a + d)
				v.Set(base+wPos+3*a+d, p+vel*waterDT)
			}
			v.Set(base+wAcc+d, f)
			v.Set(base+wForce+d, 0)
		}
	}
	ctx.Compute(count * 30)
	return nil
}

// check verifies momentum conservation (forces are applied antisymmetric
// pairs, so total velocity must remain ~0) and that positions are finite.
func (w *water) check(ctx *threads.Ctx) error {
	v, err := ctx.F64(w.mol, 0, w.nmol*wRec, vm.Read)
	if err != nil {
		return err
	}
	var px, py, pz float64
	for i := 0; i < w.nmol; i++ {
		base := i * wRec
		px += v.Get(base + wVel)
		py += v.Get(base + wVel + 1)
		pz += v.Get(base + wVel + 2)
		for s := 0; s < 9; s++ {
			if p := v.Get(base + wPos + s); math.IsNaN(p) || math.IsInf(p, 0) {
				return fmt.Errorf("apps: Water: molecule %d position not finite", i)
			}
		}
	}
	tol := 1e-9 * float64(w.nmol)
	if math.Abs(px) > tol || math.Abs(py) > tol || math.Abs(pz) > tol {
		return fmt.Errorf("apps: Water: momentum drift (%g, %g, %g)", px, py, pz)
	}
	return nil
}
