package apps

import (
	"fmt"
	"math"

	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// barnes models SPLASH-2 Barnes-Hut: n bodies under gravity, with an
// octree rebuilt every iteration and forces computed by tree traversal
// under the opening criterion θ. Threads own contiguous body blocks; the
// bounding box is reduced under a lock, thread 0 publishes the tree into
// a shared region, and every thread traverses it — the shared tree pages
// give Barnes its all-over background sharing while the body regions give
// a diagonal, matching the paper's Barnes maps. Paper input: 8192 bodies
// (a body record is 15 float64s ≈ 120 bytes ⇒ Table 1's 251 pages).
type barnes struct {
	threads  int
	iters    int
	nbody    int
	maxNodes int
	verify   bool
	bodies   memlayout.Region // per body: pos3, vel3, acc3, mass, pad5
	treeF    memlayout.Region // per node: com3, mass, center3, halfSize
	treeI    memlayout.Region // per node: 8 child indices (-1 = empty, -2 = leaf marker in slot 0)
	ctl      memlayout.Region // bbox min/max (6), node count, body-in-tree count
}

// Body record layout in float64 slots.
const (
	bRec  = 15
	bPos  = 0
	bVel  = 3
	bAcc  = 6
	bMass = 9
)

// Tree node float64 layout.
const (
	tnRec    = 8
	tnCom    = 0
	tnMass   = 3
	tnCenter = 4
	tnHalf   = 7
)

const (
	barnesDT    = 1e-3
	barnesTheta = 0.6
	barnesEps2  = 0.05
	barnesLock  = int32(31000)
)

func newBarnes(cfg Config) (*barnes, error) {
	nbody := 512
	if cfg.Scale == ScalePaper {
		nbody = 8192
	}
	iters := cfg.Iterations
	if iters <= 0 {
		iters = 4
	}
	if cfg.Threads > nbody {
		return nil, fmt.Errorf("apps: Barnes: %d threads exceed %d bodies", cfg.Threads, nbody)
	}
	return &barnes{
		threads: cfg.Threads,
		iters:   iters,
		nbody:   nbody,
		// A Barnes-Hut octree over a non-degenerate distribution has
		// ~1.5n nodes; 3n leaves room for clustered inputs.
		maxNodes: 3 * nbody,
		verify:   cfg.Verify,
	}, nil
}

func (b *barnes) Name() string    { return "Barnes" }
func (b *barnes) Threads() int    { return b.threads }
func (b *barnes) Iterations() int { return b.iters }

func (b *barnes) Setup(l *memlayout.Layout) error {
	var err error
	if b.bodies, err = l.Alloc("barnes.bodies", b.nbody*bRec*8); err != nil {
		return fmt.Errorf("apps: Barnes setup: %w", err)
	}
	if b.treeF, err = l.Alloc("barnes.treeF", b.maxNodes*tnRec*8); err != nil {
		return fmt.Errorf("apps: Barnes setup: %w", err)
	}
	if b.treeI, err = l.Alloc("barnes.treeI", b.maxNodes*8*4); err != nil {
		return fmt.Errorf("apps: Barnes setup: %w", err)
	}
	if b.ctl, err = l.Alloc("barnes.ctl", 128); err != nil {
		return fmt.Errorf("apps: Barnes setup: %w", err)
	}
	return nil
}

func (b *barnes) Body(tid int) threads.Body {
	return func(ctx *threads.Ctx) error {
		if tid == 0 {
			if err := b.initialize(ctx); err != nil {
				return err
			}
		}
		ctx.Barrier()
		start, count := BlockRange(b.nbody, b.threads, tid)
		for iter := 0; iter < b.iters; iter++ {
			// Phase 1: bounding box, reduced under a lock.
			if err := b.reduceBBox(ctx, tid, start, count); err != nil {
				return err
			}
			ctx.Barrier()
			// Phase 2: thread 0 builds and publishes the octree.
			if tid == 0 {
				if err := b.buildTree(ctx); err != nil {
					return err
				}
			}
			ctx.Barrier()
			// Phase 3: forces by tree traversal.
			if err := b.forces(ctx, start, count); err != nil {
				return err
			}
			ctx.Barrier()
			// Phase 4: integrate own bodies.
			if err := b.integrate(ctx, start, count); err != nil {
				return err
			}
			if b.verify && iter == b.iters-1 {
				ctx.Barrier()
				if tid == 0 {
					if err := b.check(ctx); err != nil {
						return err
					}
				}
			}
			ctx.EndIteration()
		}
		return nil
	}
}

func (b *barnes) initialize(ctx *threads.Ctx) error {
	v, err := ctx.F64(b.bodies, 0, b.nbody*bRec, vm.Write)
	if err != nil {
		return err
	}
	for i := 0; i < b.nbody; i++ {
		base := i * bRec
		// Deterministic shell-ish distribution.
		u := float64(i%127)/127 - 0.5
		w := float64((i*31)%113)/113 - 0.5
		q := float64((i*57)%101)/101 - 0.5
		v.Set(base+bPos, 10*u)
		v.Set(base+bPos+1, 10*w)
		v.Set(base+bPos+2, 10*q)
		v.Set(base+bVel, 0.1*w)
		v.Set(base+bVel+1, -0.1*u)
		v.Set(base+bVel+2, 0.02*q)
		v.Set(base+bMass, 1.0/float64(b.nbody))
	}
	ctx.Compute(b.nbody * bRec)
	return nil
}

// reduceBBox merges each thread's local bounding box into the shared one
// under a lock; thread 0 resets it first via iteration parity in ctl.
func (b *barnes) reduceBBox(ctx *threads.Ctx, tid, start, count int) error {
	v, err := ctx.F64(b.bodies, start*bRec, count*bRec, vm.Read)
	if err != nil {
		return err
	}
	lo := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	hi := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for i := 0; i < count; i++ {
		for d := 0; d < 3; d++ {
			p := v.Get(i*bRec + bPos + d)
			if p < lo[d] {
				lo[d] = p
			}
			if p > hi[d] {
				hi[d] = p
			}
		}
	}
	ctx.Compute(count * 6)
	if err := ctx.Lock(barnesLock); err != nil {
		return err
	}
	c, err := ctx.F64(b.ctl, 0, 8, vm.Write)
	if err != nil {
		return err
	}
	if c.Get(6) == 0 { // first contributor this iteration resets
		for d := 0; d < 3; d++ {
			c.Set(d, lo[d])
			c.Set(3+d, hi[d])
		}
	} else {
		for d := 0; d < 3; d++ {
			if lo[d] < c.Get(d) {
				c.Set(d, lo[d])
			}
			if hi[d] > c.Get(3+d) {
				c.Set(3+d, hi[d])
			}
		}
	}
	c.Set(6, c.Get(6)+1)
	if c.Get(6) == float64(b.threads) {
		c.Set(6, 0) // ready for next iteration
	}
	return ctx.Unlock(barnesLock)
}

// treeNode is the private build-time representation.
type treeNode struct {
	center   [3]float64
	half     float64
	children [8]int32
	com      [3]float64
	mass     float64
	leafBody int32 // -1 internal
}

// buildTree constructs the octree privately and publishes it to the
// shared tree regions.
func (b *barnes) buildTree(ctx *threads.Ctx) error {
	bodies, err := ctx.F64(b.bodies, 0, b.nbody*bRec, vm.Read)
	if err != nil {
		return err
	}
	c, err := ctx.F64(b.ctl, 0, 8, vm.Read)
	if err != nil {
		return err
	}
	var center [3]float64
	half := 0.0
	for d := 0; d < 3; d++ {
		lo, hi := c.Get(d), c.Get(3+d)
		center[d] = (lo + hi) / 2
		if h := (hi-lo)/2 + 1e-9; h > half {
			half = h
		}
	}

	nodes := make([]treeNode, 1, b.nbody*2)
	nodes[0] = newTreeNode(center, half)
	for i := 0; i < b.nbody; i++ {
		p := [3]float64{
			bodies.Get(i*bRec + bPos),
			bodies.Get(i*bRec + bPos + 1),
			bodies.Get(i*bRec + bPos + 2),
		}
		m := bodies.Get(i*bRec + bMass)
		var insertErr error
		nodes, insertErr = b.insert(nodes, 0, int32(i), p, m, 0)
		if insertErr != nil {
			return insertErr
		}
	}
	computeCOM(nodes, 0)
	if len(nodes) > b.maxNodes {
		return fmt.Errorf("apps: Barnes: tree grew to %d nodes (max %d)", len(nodes), b.maxNodes)
	}

	// Publish.
	tf, err := ctx.F64(b.treeF, 0, len(nodes)*tnRec, vm.Write)
	if err != nil {
		return err
	}
	ti, err := ctx.I32(b.treeI, 0, len(nodes)*8, vm.Write)
	if err != nil {
		return err
	}
	for i, n := range nodes {
		base := i * tnRec
		tf.Set(base+tnCom, n.com[0])
		tf.Set(base+tnCom+1, n.com[1])
		tf.Set(base+tnCom+2, n.com[2])
		tf.Set(base+tnMass, n.mass)
		tf.Set(base+tnCenter, n.center[0])
		tf.Set(base+tnCenter+1, n.center[1])
		tf.Set(base+tnCenter+2, n.center[2])
		tf.Set(base+tnHalf, n.half)
		for ch := 0; ch < 8; ch++ {
			ti.Set(i*8+ch, n.children[ch])
		}
	}
	cw, err := ctx.F64(b.ctl, 0, 8, vm.Write)
	if err != nil {
		return err
	}
	cw.Set(7, float64(len(nodes)))
	ctx.Compute(b.nbody * 30)
	return nil
}

func newTreeNode(center [3]float64, half float64) treeNode {
	n := treeNode{center: center, half: half, leafBody: -1}
	for i := range n.children {
		n.children[i] = -1
	}
	return n
}

func (b *barnes) insert(nodes []treeNode, ni int, body int32, p [3]float64, m float64, depth int) ([]treeNode, error) {
	if depth > 64 {
		return nodes, fmt.Errorf("apps: Barnes: insertion depth exceeded (coincident bodies)")
	}
	n := &nodes[ni]
	oct := octant(n.center, p)
	child := n.children[oct]
	switch {
	case child == -1 && n.leafBody == -1 && isEmptyInternal(n):
		// Empty node: make it a leaf.
		n.leafBody = body
		n.com = p
		n.mass = m
		return nodes, nil
	case n.leafBody >= 0:
		// Leaf: split it. Push the old body into a child directly
		// (resetting and re-inserting would make the node look empty
		// and loop), then insert the new body normally.
		old := n.leafBody
		oldCom := n.com
		oldMass := n.mass
		n.leafBody = -1
		n.com = [3]float64{}
		n.mass = 0
		oldOct := octant(n.center, oldCom)
		nc := newTreeNode(childCenter(n.center, n.half, oldOct), n.half/2)
		nc.leafBody = old
		nc.com = oldCom
		nc.mass = oldMass
		nodes = append(nodes, nc)
		nodes[ni].children[oldOct] = int32(len(nodes) - 1)
		return b.insert(nodes, ni, body, p, m, depth)
	case child == -1:
		// Internal node, empty octant: create a leaf child.
		nc := newTreeNode(childCenter(n.center, n.half, oct), n.half/2)
		nc.leafBody = body
		nc.com = p
		nc.mass = m
		nodes = append(nodes, nc)
		nodes[ni].children[oct] = int32(len(nodes) - 1)
		return nodes, nil
	default:
		return b.insert(nodes, int(child), body, p, m, depth+1)
	}
}

func isEmptyInternal(n *treeNode) bool {
	for _, c := range n.children {
		if c != -1 {
			return false
		}
	}
	return n.mass == 0
}

func octant(center, p [3]float64) int {
	o := 0
	for d := 0; d < 3; d++ {
		if p[d] >= center[d] {
			o |= 1 << d
		}
	}
	return o
}

func childCenter(center [3]float64, half float64, oct int) [3]float64 {
	out := center
	for d := 0; d < 3; d++ {
		if oct&(1<<d) != 0 {
			out[d] += half / 2
		} else {
			out[d] -= half / 2
		}
	}
	return out
}

// computeCOM fills internal nodes' centres of mass bottom-up.
func computeCOM(nodes []treeNode, ni int) (mass float64, com [3]float64) {
	n := &nodes[ni]
	if n.leafBody >= 0 {
		return n.mass, n.com
	}
	var total float64
	var acc [3]float64
	for _, c := range n.children {
		if c < 0 {
			continue
		}
		m, cc := computeCOM(nodes, int(c))
		total += m
		for d := 0; d < 3; d++ {
			acc[d] += m * cc[d]
		}
	}
	if total > 0 {
		for d := 0; d < 3; d++ {
			acc[d] /= total
		}
	}
	n.mass = total
	n.com = acc
	return total, acc
}

// forces traverses the shared tree for each owned body.
func (b *barnes) forces(ctx *threads.Ctx, start, count int) error {
	c, err := ctx.F64(b.ctl, 0, 8, vm.Read)
	if err != nil {
		return err
	}
	nnodes := int(c.Get(7))
	if nnodes <= 0 {
		return fmt.Errorf("apps: Barnes: empty tree")
	}
	tf, err := ctx.F64(b.treeF, 0, nnodes*tnRec, vm.Read)
	if err != nil {
		return err
	}
	ti, err := ctx.I32(b.treeI, 0, nnodes*8, vm.Read)
	if err != nil {
		return err
	}
	bodies, err := ctx.F64(b.bodies, start*bRec, count*bRec, vm.Write)
	if err != nil {
		return err
	}
	stack := make([]int, 0, 128)
	for i := 0; i < count; i++ {
		base := i * bRec
		p := [3]float64{bodies.Get(base + bPos), bodies.Get(base + bPos + 1), bodies.Get(base + bPos + 2)}
		var acc [3]float64
		work := 0
		stack = append(stack[:0], 0)
		for len(stack) > 0 {
			ni := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nb := ni * tnRec
			mass := tf.Get(nb + tnMass)
			if mass == 0 {
				continue
			}
			dx := tf.Get(nb+tnCom) - p[0]
			dy := tf.Get(nb+tnCom+1) - p[1]
			dz := tf.Get(nb+tnCom+2) - p[2]
			r2 := dx*dx + dy*dy + dz*dz
			size := 2 * tf.Get(nb+tnHalf)
			leaf := true
			for ch := 0; ch < 8; ch++ {
				if ti.Get(ni*8+ch) >= 0 {
					leaf = false
					break
				}
			}
			if leaf || size*size < barnesTheta*barnesTheta*r2 {
				if r2 < 1e-12 {
					continue // self
				}
				inv := mass / ((r2 + barnesEps2) * math.Sqrt(r2+barnesEps2))
				acc[0] += inv * dx
				acc[1] += inv * dy
				acc[2] += inv * dz
				work += 12
				continue
			}
			for ch := 0; ch < 8; ch++ {
				if k := ti.Get(ni*8 + ch); k >= 0 {
					stack = append(stack, int(k))
				}
			}
		}
		bodies.Set(base+bAcc, acc[0])
		bodies.Set(base+bAcc+1, acc[1])
		bodies.Set(base+bAcc+2, acc[2])
		ctx.Compute(work)
	}
	return nil
}

func (b *barnes) integrate(ctx *threads.Ctx, start, count int) error {
	v, err := ctx.F64(b.bodies, start*bRec, count*bRec, vm.Write)
	if err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		base := i * bRec
		for d := 0; d < 3; d++ {
			vel := v.Get(base+bVel+d) + v.Get(base+bAcc+d)*barnesDT
			v.Set(base+bVel+d, vel)
			v.Set(base+bPos+d, v.Get(base+bPos+d)+vel*barnesDT)
		}
	}
	ctx.Compute(count * 12)
	return nil
}

// check verifies all bodies remain finite and mass entered the tree.
func (b *barnes) check(ctx *threads.Ctx) error {
	v, err := ctx.F64(b.bodies, 0, b.nbody*bRec, vm.Read)
	if err != nil {
		return err
	}
	for i := 0; i < b.nbody; i++ {
		for d := 0; d < 3; d++ {
			p := v.Get(i*bRec + bPos + d)
			if math.IsNaN(p) || math.IsInf(p, 0) {
				return fmt.Errorf("apps: Barnes: body %d not finite", i)
			}
		}
	}
	c, err := ctx.F64(b.ctl, 0, 8, vm.Read)
	if err != nil {
		return err
	}
	nnodes := int(c.Get(7))
	tf, err := ctx.F64(b.treeF, 0, tnRec, vm.Read)
	if err != nil {
		return err
	}
	rootMass := tf.Get(tnMass)
	if math.Abs(rootMass-1.0) > 1e-9 {
		return fmt.Errorf("apps: Barnes: root mass %v, want 1 (tree has %d nodes)", rootMass, nnodes)
	}
	return nil
}
