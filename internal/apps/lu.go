package apps

import (
	"fmt"
	"math"

	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/vm"
)

// lu is blocked dense LU factorization without pivoting, following the
// SPLASH-2 kernel: the n×n float32 matrix is stored block-major (each
// B×B block contiguous — with B=32 a block is exactly one 4 KiB page) and
// blocks are assigned to a pr×pc thread grid by 2D scatter:
// owner(I,J) = (I mod pr)·pc + (J mod pc). One outer elimination step is
// one application iteration; the panel/interior data flow produces the
// block-structured correlation maps of the paper's Table 3.
type lu struct {
	name    string
	threads int
	n       int // matrix dimension
	b       int // block size
	nb      int // blocks per dimension
	pr, pc  int // thread grid
	verify  bool
	iters   int
	mat     memlayout.Region
}

func newLU(name string, cfg Config, paperN int) (*lu, error) {
	// Test scale keeps the two LU configurations distinct (the paper's
	// LU2k has 4x the pages of LU1k).
	n, b := 128, 16
	if paperN >= 2048 {
		n = 256
	}
	if cfg.Scale == ScalePaper {
		n, b = paperN, 32
	}
	nb := n / b
	pr, pc := threadGrid(cfg.Threads)
	iters := nb
	if cfg.Iterations > 0 && cfg.Iterations < iters {
		iters = cfg.Iterations
	}
	if nb < 2 {
		return nil, fmt.Errorf("apps: %s: matrix %d too small for block size %d", name, n, b)
	}
	return &lu{
		name:    name,
		threads: cfg.Threads,
		n:       n,
		b:       b,
		nb:      nb,
		pr:      pr,
		pc:      pc,
		verify:  cfg.Verify,
		iters:   iters,
	}, nil
}

// threadGrid factors t into the most square pr×pc grid with pr ≤ pc.
func threadGrid(t int) (pr, pc int) {
	pr = 1
	for d := 1; d*d <= t; d++ {
		if t%d == 0 {
			pr = d
		}
	}
	return pr, t / pr
}

func (a *lu) Name() string    { return a.name }
func (a *lu) Threads() int    { return a.threads }
func (a *lu) Iterations() int { return a.iters }

func (a *lu) Setup(l *memlayout.Layout) error {
	var err error
	a.mat, err = l.Alloc(a.name+".mat", a.n*a.n*4)
	if err != nil {
		return fmt.Errorf("apps: %s setup: %w", a.name, err)
	}
	return nil
}

func (a *lu) owner(bi, bj int) int { return (bi%a.pr)*a.pc + bj%a.pc }

// blockOff returns the element offset of block (bi, bj) in block-major
// storage.
func (a *lu) blockOff(bi, bj int) int { return (bi*a.nb + bj) * a.b * a.b }

// initial is the deterministic, diagonally dominant test matrix:
// pivoting-free LU stays well-conditioned on it.
func (a *lu) initial(i, j int) float32 {
	v := float32((i*131+j*17)%29-14) / 29
	if i == j {
		v += float32(a.n)
	}
	return v
}

// readBlock copies block (bi, bj) into a private buffer.
func (a *lu) readBlock(ctx *threads.Ctx, bi, bj int, acc vm.Access) (memlayout.F32, error) {
	return ctx.F32(a.mat, a.blockOff(bi, bj), a.b*a.b, acc)
}

func (a *lu) Body(tid int) threads.Body {
	return func(ctx *threads.Ctx) error {
		b, nb := a.b, a.nb
		if tid == 0 {
			v, err := ctx.F32(a.mat, 0, a.n*a.n, vm.Write)
			if err != nil {
				return err
			}
			for bi := 0; bi < nb; bi++ {
				for bj := 0; bj < nb; bj++ {
					off := a.blockOff(bi, bj)
					for i := 0; i < b; i++ {
						for j := 0; j < b; j++ {
							v.Set(off+i*b+j, a.initial(bi*b+i, bj*b+j))
						}
					}
				}
			}
			ctx.Compute(a.n * a.n)
		}
		ctx.Barrier()

		for k := 0; k < a.iters; k++ {
			// Phase 1: factor the diagonal block.
			if a.owner(k, k) == tid {
				if err := a.factorDiag(ctx, k); err != nil {
					return err
				}
			}
			ctx.Barrier()
			// Phase 2: perimeter panels.
			for bi := k + 1; bi < nb; bi++ {
				if a.owner(bi, k) == tid {
					if err := a.panelCol(ctx, bi, k); err != nil {
						return err
					}
				}
			}
			for bj := k + 1; bj < nb; bj++ {
				if a.owner(k, bj) == tid {
					if err := a.panelRow(ctx, k, bj); err != nil {
						return err
					}
				}
			}
			ctx.Barrier()
			// Phase 3: interior update.
			for bi := k + 1; bi < nb; bi++ {
				for bj := k + 1; bj < nb; bj++ {
					if a.owner(bi, bj) == tid {
						if err := a.interior(ctx, bi, bj, k); err != nil {
							return err
						}
					}
				}
			}
			if a.verify && k == a.iters-1 && a.iters == nb {
				ctx.Barrier()
				if tid == 0 {
					if err := a.check(ctx); err != nil {
						return err
					}
				}
			}
			ctx.EndIteration()
		}
		return nil
	}
}

// factorDiag computes the in-place unit-lower/upper factorization of the
// diagonal block.
func (a *lu) factorDiag(ctx *threads.Ctx, k int) error {
	b := a.b
	blk, err := a.readBlock(ctx, k, k, vm.Write)
	if err != nil {
		return err
	}
	for p := 0; p < b; p++ {
		piv := blk.Get(p*b + p)
		if piv == 0 {
			return fmt.Errorf("apps: %s: zero pivot at step %d", a.name, k)
		}
		for i := p + 1; i < b; i++ {
			m := blk.Get(i*b+p) / piv
			blk.Set(i*b+p, m)
			for j := p + 1; j < b; j++ {
				blk.Set(i*b+j, blk.Get(i*b+j)-m*blk.Get(p*b+j))
			}
		}
	}
	ctx.Compute(b * b * b / 3)
	return nil
}

// panelCol solves X·U_kk = A[bi][k] in place (produces an L panel).
func (a *lu) panelCol(ctx *threads.Ctx, bi, k int) error {
	b := a.b
	diag, err := a.readBlock(ctx, k, k, vm.Read)
	if err != nil {
		return err
	}
	blk, err := a.readBlock(ctx, bi, k, vm.Write)
	if err != nil {
		return err
	}
	for i := 0; i < b; i++ {
		for p := 0; p < b; p++ {
			v := blk.Get(i*b + p)
			for q := 0; q < p; q++ {
				v -= blk.Get(i*b+q) * diag.Get(q*b+p)
			}
			blk.Set(i*b+p, v/diag.Get(p*b+p))
		}
	}
	ctx.Compute(b * b * b / 2)
	return nil
}

// panelRow solves L_kk·X = A[k][bj] in place (produces a U panel).
func (a *lu) panelRow(ctx *threads.Ctx, k, bj int) error {
	b := a.b
	diag, err := a.readBlock(ctx, k, k, vm.Read)
	if err != nil {
		return err
	}
	blk, err := a.readBlock(ctx, k, bj, vm.Write)
	if err != nil {
		return err
	}
	for j := 0; j < b; j++ {
		for p := 0; p < b; p++ {
			v := blk.Get(p*b + j)
			for q := 0; q < p; q++ {
				v -= diag.Get(p*b+q) * blk.Get(q*b+j)
			}
			blk.Set(p*b+j, v) // L has unit diagonal
		}
	}
	ctx.Compute(b * b * b / 2)
	return nil
}

// interior applies A[bi][bj] -= L[bi][k] · U[k][bj].
func (a *lu) interior(ctx *threads.Ctx, bi, bj, k int) error {
	b := a.b
	lp, err := a.readBlock(ctx, bi, k, vm.Read)
	if err != nil {
		return err
	}
	up, err := a.readBlock(ctx, k, bj, vm.Read)
	if err != nil {
		return err
	}
	blk, err := a.readBlock(ctx, bi, bj, vm.Write)
	if err != nil {
		return err
	}
	// Copy panels out of the views once: the kernel is O(b³) and view
	// accessors are the hot path otherwise.
	lbuf := make([]float32, b*b)
	ubuf := make([]float32, b*b)
	for i := 0; i < b*b; i++ {
		lbuf[i] = lp.Get(i)
		ubuf[i] = up.Get(i)
	}
	for i := 0; i < b; i++ {
		for p := 0; p < b; p++ {
			m := lbuf[i*b+p]
			if m == 0 {
				continue
			}
			for j := 0; j < b; j++ {
				blk.Set(i*b+j, blk.Get(i*b+j)-m*ubuf[p*b+j])
			}
		}
	}
	ctx.Compute(b * b * b)
	return nil
}

// check reconstructs L·U and compares against the initial matrix.
// Only run at test scale (O(n³) in the verifier itself).
func (a *lu) check(ctx *threads.Ctx) error {
	if a.n > 256 {
		return nil
	}
	n, b, nb := a.n, a.b, a.nb
	v, err := ctx.F32(a.mat, 0, n*n, vm.Read)
	if err != nil {
		return err
	}
	at := func(i, j int) float64 {
		bi, bj := i/b, j/b
		return float64(v.Get(a.blockOff(bi, bj) + (i%b)*b + (j % b)))
	}
	_ = nb
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// (L·U)[i][j] with L unit-lower.
			var s float64
			kmax := min(i, j)
			for k := 0; k < kmax; k++ {
				s += at(i, k) * at(k, j)
			}
			if i <= j {
				s += at(i, j) // L[i][i] = 1 times U[i][j]
			} else {
				s += at(i, j) * at(j, j)
			}
			diff := math.Abs(s - float64(a.initial(i, j)))
			if diff > worst {
				worst = diff
			}
		}
	}
	// float32 blocked elimination on a diagonally dominant matrix:
	// residual stays tiny relative to the diagonal magnitude n.
	if worst > float64(a.n)*1e-4 {
		return fmt.Errorf("apps: %s: max |L·U - A| = %g", a.name, worst)
	}
	return nil
}
