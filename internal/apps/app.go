// Package apps provides the parallel applications the paper evaluates:
// SOR and Go reimplementations of the SPLASH-2 codes Barnes, FFT, LU,
// Ocean, Water (n-squared), and Spatial (water-spatial). Each performs
// real computation on DSM-shared data using the same decomposition as the
// original, so the page-level sharing structure — what correlation
// tracking measures — matches the paper's.
//
// Every application follows the SPMD convention: thread 0 initializes the
// shared data, a barrier separates initialization from iteration, and each
// iteration ends with ctx.EndIteration(). When constructed with
// Verify: true, thread 0 checks an application-specific numerical
// invariant on the final iteration and fails the run on violation.
package apps

import (
	"fmt"
	"sort"

	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
)

// App is a runnable DSM application.
type App interface {
	// Name identifies the application and input configuration
	// ("SOR", "FFT7", "LU2k", ...).
	Name() string
	// Threads returns the configured thread count.
	Threads() int
	// Iterations returns the number of EndIteration episodes a run
	// executes.
	Iterations() int
	// Setup allocates the application's shared regions.
	Setup(l *memlayout.Layout) error
	// Body returns thread tid's code. Call only after Setup.
	Body(tid int) threads.Body
}

// BlockRange splits n items into parts contiguous blocks and returns the
// half-open range of block idx. Leftover items go to the leading blocks,
// matching the engine's BlockPlacement.
func BlockRange(n, parts, idx int) (start, count int) {
	per := n / parts
	extra := n % parts
	start = idx*per + min(idx, extra)
	count = per
	if idx < extra {
		count++
	}
	return start, count
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Config selects a paper or test-scale configuration of an application.
type Config struct {
	// Threads is the application thread count (the paper uses 64).
	Threads int
	// Iterations overrides the default iteration count when positive.
	Iterations int
	// Verify enables the final-iteration numerical check.
	Verify bool
	// Scale selects input size: ScalePaper uses the paper's Table 1
	// inputs; ScaleTest uses small inputs that run in milliseconds.
	Scale Scale
}

// Scale selects an input-size class.
type Scale int

// Input-size classes.
const (
	ScaleTest Scale = iota + 1
	ScalePaper
)

// New builds the named application. Valid names are those returned by
// Names: Barnes, FFT6, FFT7, FFT8, LU1k, LU2k, Ocean, Spatial, SOR, Water.
func New(name string, cfg Config) (App, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("apps: %s: Threads must be positive", name)
	}
	if cfg.Scale == 0 {
		cfg.Scale = ScaleTest
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q", name)
	}
	return f(cfg)
}

// Names returns the available application names in the order the paper's
// Table 1 lists them.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

var registry = map[string]func(Config) (App, error){
	"Barnes": func(c Config) (App, error) { return newBarnes(c) },
	"FFT6":   func(c Config) (App, error) { return newFFT("FFT6", c, 6) },
	"FFT7":   func(c Config) (App, error) { return newFFT("FFT7", c, 7) },
	"FFT8":   func(c Config) (App, error) { return newFFT("FFT8", c, 8) },
	"LU1k":   func(c Config) (App, error) { return newLU("LU1k", c, 1024) },
	"LU2k":   func(c Config) (App, error) { return newLU("LU2k", c, 2048) },
	"Ocean":  func(c Config) (App, error) { return newOcean(c) },
	"Spatial": func(c Config) (App, error) {
		return newSpatial(c)
	},
	"SOR":   func(c Config) (App, error) { return newSOR(c) },
	"Water": func(c Config) (App, error) { return newWater(c) },
}

// SharedPages runs an application's Setup against a fresh layout and
// returns its shared-page count (the paper's Table 1 right column).
func SharedPages(a App) (int, error) {
	l := memlayout.NewLayout()
	if err := a.Setup(l); err != nil {
		return 0, err
	}
	return l.TotalPages(), nil
}
