// Tuning: use correlation maps as a performance-tuning aid (paper §3 and
// Figure 3). For the 32-thread FFT, compare how much of the sharing stays
// inside the "free zones" of a four-node versus an eight-node
// configuration, then validate the prediction by running both.
package main

import (
	"fmt"
	"os"

	"actdsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tuning:", err)
		os.Exit(1)
	}
}

func run() error {
	const threads = 32

	// Track once to obtain the correlation map.
	m, err := actdsm.TrackMatrix("FFT6", threads, 4, actdsm.ScaleTest)
	if err != nil {
		return err
	}

	fmt.Println("FFT, 32 threads — free zones ('O' = sharing inside a node):")
	for _, nodes := range []int{4, 8} {
		assign := actdsm.Stretch(threads, nodes)
		fmt.Printf("\n%d nodes: cut cost %d, %.1f%% of sharing is free\n%s",
			nodes, m.CutCost(assign), 100*m.FreeSharing(assign),
			m.FreeZoneOverlay(assign))
	}

	// The map alone cannot decide which is faster (paper §3: "not
	// enough information without running both") — so run both.
	fmt.Println("\nvalidating by running both configurations:")
	for _, nodes := range []int{4, 8} {
		res, err := actdsm.Run(actdsm.RunConfig{
			App: "FFT6", Threads: threads, Nodes: nodes,
			Iterations: 4, TrackIter: -1,
		})
		if err != nil {
			return err
		}
		// Steady-state iteration time (skip the cold start).
		var steady actdsm.Time
		for _, t := range res.IterTime[1:] {
			steady += t
		}
		steady /= actdsm.Time(len(res.IterTime) - 1)
		fmt.Printf("  %d nodes: %.3f ms/iteration, %d remote misses total\n",
			nodes, steady.Seconds()*1e3, res.Stats.RemoteMisses)
	}
	fmt.Println("\nMore nodes add compute but break sharing clusters apart;")
	fmt.Println("whether 8 nodes beats 4 depends on the communication/computation")
	fmt.Println("ratio — exactly the trade-off the paper's Figure 3 illustrates.")

	return sweepPrefetchBudget()
}

// sweepPrefetchBudget tunes the second knob correlation data feeds: the
// per-node, per-epoch page budget of the prefetch layer (DESIGN.md §7).
// Budget 0 is demand-only; -1 is unbounded. A small budget captures most
// of the round-trip savings on a regular workload; past the app's
// per-epoch sharing set, extra budget buys nothing and only risks wasted
// prefetches (pages invalidated before first touch).
func sweepPrefetchBudget() error {
	const app, threads, nodes = "Ocean", 64, 8
	fmt.Printf("\nprefetch-budget sweep (%s, %d threads, %d nodes, tracked):\n", app, threads, nodes)
	fmt.Printf("  %8s %13s %6s %7s %6s %6s %12s\n",
		"budget", "demand calls", "hits", "wasted", "late", "rounds", "elapsed")
	for _, budget := range []int{0, 1, 2, 4, 8, -1} {
		res, err := actdsm.Run(actdsm.RunConfig{
			App: app, Threads: threads, Nodes: nodes,
			TrackIter:      1,
			PrefetchBudget: budget,
			BatchDiffs:     budget != 0,
		})
		if err != nil {
			return err
		}
		s := res.Stats
		label := fmt.Sprint(budget)
		if budget < 0 {
			label = "∞"
		}
		fmt.Printf("  %8s %13d %6d %7d %6d %6d %12d\n",
			label, s.DemandCalls(), s.PrefetchHits, s.PrefetchWasted,
			s.PrefetchLate, s.PrefetchRounds, int64(res.Elapsed))
	}
	fmt.Println("\nThe knob maps to ClusterConfig.PrefetchBudget on the System API")
	fmt.Println("(paired with ClusterConfig.BatchDiffs to coalesce the fetches).")
	return nil
}
