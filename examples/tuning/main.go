// Tuning: use correlation maps as a performance-tuning aid (paper §3 and
// Figure 3). For the 32-thread FFT, compare how much of the sharing stays
// inside the "free zones" of a four-node versus an eight-node
// configuration, then validate the prediction by running both.
package main

import (
	"fmt"
	"os"

	"actdsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tuning:", err)
		os.Exit(1)
	}
}

func run() error {
	const threads = 32

	// Track once to obtain the correlation map.
	m, err := actdsm.TrackMatrix("FFT6", threads, 4, actdsm.ScaleTest)
	if err != nil {
		return err
	}

	fmt.Println("FFT, 32 threads — free zones ('O' = sharing inside a node):")
	for _, nodes := range []int{4, 8} {
		assign := actdsm.Stretch(threads, nodes)
		fmt.Printf("\n%d nodes: cut cost %d, %.1f%% of sharing is free\n%s",
			nodes, m.CutCost(assign), 100*m.FreeSharing(assign),
			m.FreeZoneOverlay(assign))
	}

	// The map alone cannot decide which is faster (paper §3: "not
	// enough information without running both") — so run both.
	fmt.Println("\nvalidating by running both configurations:")
	for _, nodes := range []int{4, 8} {
		res, err := actdsm.Run(actdsm.RunConfig{
			App: "FFT6", Threads: threads, Nodes: nodes,
			Iterations: 4, TrackIter: -1,
		})
		if err != nil {
			return err
		}
		// Steady-state iteration time (skip the cold start).
		var steady actdsm.Time
		for _, t := range res.IterTime[1:] {
			steady += t
		}
		steady /= actdsm.Time(len(res.IterTime) - 1)
		fmt.Printf("  %d nodes: %.3f ms/iteration, %d remote misses total\n",
			nodes, steady.Seconds()*1e3, res.Stats.RemoteMisses)
	}
	fmt.Println("\nMore nodes add compute but break sharing clusters apart;")
	fmt.Println("whether 8 nodes beats 4 depends on the communication/computation")
	fmt.Println("ratio — exactly the trade-off the paper's Figure 3 illustrates.")
	return nil
}
