// Heterogeneous: the paper's §2 motivation for unequal thread counts —
// "Unequal numbers of threads might be desirable in the presence of
// heterogeneous node capacity, whether due to competing applications or
// simply because some machines are faster than others."
//
// A four-node cluster where node 0 is 3× faster runs SOR under three
// placements: balanced stretch (ignores speeds), capacity-proportional
// stretch (more threads on the fast node), and capacity-aware min-cost
// (capacity-proportional and sharing-aware, from a tracked correlation
// matrix).
package main

import (
	"fmt"
	"os"

	"actdsm"
)

const (
	threads = 32
	nodes   = 4
	iters   = 8
)

var speeds = []float64{3, 1, 1, 1}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "heterogeneous:", err)
		os.Exit(1)
	}
}

func runWith(placement []int) (actdsm.Time, int64, error) {
	app, err := actdsm.NewApp("SOR", actdsm.AppConfig{
		Threads: threads, Iterations: iters, Verify: true,
	})
	if err != nil {
		return 0, 0, err
	}
	sys, err := actdsm.NewSystem(app, nodes,
		actdsm.WithPlacement(placement), actdsm.WithNodeSpeeds(speeds))
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = sys.Close() }()
	if err := sys.Run(); err != nil {
		return 0, 0, err
	}
	return sys.Elapsed(), sys.Cluster().Stats().Snapshot().RemoteMisses, nil
}

func run() error {
	// Thread correlations from a quick tracked run (homogeneous — the
	// sharing pattern does not depend on node speeds).
	m, err := actdsm.TrackMatrix("SOR", threads, nodes, actdsm.ScaleTest)
	if err != nil {
		return err
	}
	caps, err := actdsm.CapacitiesForSpeeds(threads, speeds)
	if err != nil {
		return err
	}
	capStretch, err := actdsm.StretchCapacities(threads, caps)
	if err != nil {
		return err
	}
	capMinCost, err := actdsm.MinCostCapacities(m, caps)
	if err != nil {
		return err
	}

	fmt.Printf("cluster: node speeds %v → capacities %v\n\n", speeds, caps)
	fmt.Printf("%-28s  %12s  %12s  %10s\n", "placement", "time (ms)", "remote miss", "cut cost")
	for _, cfg := range []struct {
		label  string
		assign []int
	}{
		{"balanced stretch", actdsm.Stretch(threads, nodes)},
		{"capacity stretch", capStretch},
		{"capacity min-cost", capMinCost},
	} {
		elapsed, misses, err := runWith(cfg.assign)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.label, err)
		}
		fmt.Printf("%-28s  %12.3f  %12d  %10d\n",
			cfg.label, elapsed.Seconds()*1e3, misses, m.CutCost(cfg.assign))
	}
	fmt.Println("\nBalanced placement leaves the fast node idle at every barrier;")
	fmt.Println("capacity-proportional placement uses it, and the sharing-aware")
	fmt.Println("variant keeps neighbouring threads together at the same time.")
	return nil
}
