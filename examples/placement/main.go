// Placement: reconfigure a *running* application through thread
// migration (paper §5). The FFT starts under a deliberately bad random
// placement; active correlation tracking runs on one iteration; the
// min-cost heuristic derives a better mapping from the cut costs; and a
// single round of migrations applies it mid-run. Per-iteration times and
// remote misses before and after show the effect.
package main

import (
	"fmt"
	"os"

	"actdsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "placement:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		threads = 64
		nodes   = 8
		iters   = 8
	)
	app, err := actdsm.NewApp("FFT7", actdsm.AppConfig{
		Threads: threads, Iterations: iters, Verify: true,
	})
	if err != nil {
		return err
	}
	// Start from a random placement — the situation after threads have
	// been created with no sharing knowledge.
	bad := actdsm.RandomBalanced(threads, nodes, actdsm.NewRNG(7))
	sys, err := actdsm.NewSystem(app, nodes, actdsm.WithPlacement(bad))
	if err != nil {
		return err
	}
	defer func() { _ = sys.Close() }()

	tracker, err := sys.TrackIteration(1)
	if err != nil {
		return err
	}
	eng := sys.Engine()
	cl := sys.Cluster()

	var iterTimes []actdsm.Time
	var iterMisses []int64
	var last actdsm.Time
	lastStats := cl.Stats().Snapshot()
	migratedAt := -1

	err = sys.SetHooks(actdsm.Hooks{OnIteration: func(iter int) {
		now := eng.Elapsed()
		cur := cl.Stats().Snapshot()
		iterTimes = append(iterTimes, now-last)
		iterMisses = append(iterMisses, cur.Sub(lastStats).RemoteMisses)
		last, lastStats = now, cur

		// As soon as tracking has completed, compute the min-cost
		// mapping and migrate everything in one round.
		if tracker.Done() && migratedAt < 0 {
			m := tracker.Matrix()
			target := actdsm.MinCost(m, nodes)
			aligned := actdsm.AlignLabels(target, eng.Placement(), nodes)
			moves, err := eng.ApplyPlacement(aligned)
			if err != nil {
				fmt.Fprintln(os.Stderr, "migration failed:", err)
				return
			}
			migratedAt = iter
			fmt.Printf("iteration %d: tracked; cut cost %d (random) -> %d (min-cost); migrated %d threads\n\n",
				iter, m.CutCost(bad), m.CutCost(aligned), moves)
		}
	}})
	if err != nil {
		return err
	}

	if err := sys.Run(); err != nil {
		return err
	}

	fmt.Printf("%-5s  %12s  %12s\n", "iter", "time (ms)", "remote miss")
	for i := range iterTimes {
		marker := ""
		switch {
		case i == 1:
			marker = "  <- tracked iteration"
		case i == migratedAt+1:
			marker = "  <- first iteration after migration"
		}
		fmt.Printf("%-5d  %12.3f  %12d%s\n",
			i, iterTimes[i].Seconds()*1e3, iterMisses[i], marker)
	}

	// Quantify the improvement over the steady states (iteration 0 vs a
	// mid-run iteration after migration; the final iteration also pays
	// run-teardown costs and would understate the gain).
	if migratedAt >= 0 && migratedAt+3 < len(iterTimes) {
		before := iterTimes[0]
		after := iterTimes[len(iterTimes)-2]
		fmt.Printf("\nsteady-state iteration time: %.3f ms before, %.3f ms after (%.2fx)\n",
			before.Seconds()*1e3, after.Seconds()*1e3,
			float64(before)/float64(after))
	}
	return nil
}
