// Chaos: run an application over a deliberately unreliable transport and
// watch the resilience machinery absorb the faults. A Chaos wrapper drops
// requests and replies, duplicates deliveries, and delays calls; bounded
// retry with exponential backoff (WithTransportOptions) and the barrier's
// phase-level re-broadcast (WithBarrierRetries) recover, and the
// per-message-type call statistics show exactly where the retries went.
//
// The punchline is the comparison at the end: despite every injected
// fault, the chaotic run's protocol counters — remote misses, diffs,
// barriers, GC — are identical to a fault-free run. Lost messages cost
// retries and latency, never correctness or duplicated work.
//
// Run with -tcp to route the same experiment over real loopback sockets.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"actdsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

func run() error {
	useTCP := flag.Bool("tcp", false, "route DSM messages over loopback TCP")
	seed := flag.Uint64("seed", 7, "fault-schedule seed")
	flag.Parse()

	const threads, nodes = 16, 4

	measure := func(chaotic bool) (actdsm.Snapshot, error) {
		app, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: threads})
		if err != nil {
			return actdsm.Snapshot{}, err
		}
		opts := []actdsm.SystemOption{
			actdsm.WithTransportOptions(actdsm.TransportOptions{
				CallTimeout: 2 * time.Second,
				MaxAttempts: 8,
				BackoffBase: 100 * time.Microsecond,
			}),
			actdsm.WithBarrierRetries(1),
		}
		if *useTCP {
			opts = append(opts, actdsm.WithTCP())
		}
		if chaotic {
			opts = append(opts, actdsm.WithChaos(actdsm.ChaosOptions{
				Seed:            *seed,
				DropRequestProb: 0.05,
				DropReplyProb:   0.02,
				DuplicateProb:   0.02,
				DelayProb:       0.01,
				Delay:           200 * time.Microsecond,
			}))
		}
		sys, err := actdsm.NewSystem(app, nodes, opts...)
		if err != nil {
			return actdsm.Snapshot{}, err
		}
		defer func() { _ = sys.Close() }()
		if err := sys.Run(); err != nil {
			return actdsm.Snapshot{}, err
		}
		if err := sys.Cluster().CheckCoherence(); err != nil {
			return actdsm.Snapshot{}, fmt.Errorf("coherence check: %w", err)
		}
		return sys.Cluster().Stats().Snapshot(), nil
	}

	transportName := "local"
	if *useTCP {
		transportName = "TCP"
	}
	fmt.Printf("SOR, %d threads on %d nodes, %s transport\n\n", threads, nodes, transportName)

	clean, err := measure(false)
	if err != nil {
		return err
	}
	fmt.Printf("fault-free run:\n%s\n", clean.FormatCalls())

	chaotic, err := measure(true)
	if err != nil {
		return fmt.Errorf("chaotic run did not recover: %w", err)
	}
	fmt.Printf("chaotic run (5%% dropped requests, 2%% dropped replies, "+
		"2%% duplicates, 1%% delays):\n%s\n", chaotic.FormatCalls())

	var retries int64
	for _, c := range chaotic.Calls {
		retries += c.Retries
	}
	fmt.Printf("retries spent absorbing faults: %d (plus %d barrier phase re-broadcasts)\n",
		retries, chaotic.BarrierRetries)

	a, b := chaotic.Counters(), clean.Counters()
	// Message/byte traffic legitimately grows with re-broadcast phases;
	// everything else must be exactly-once.
	a.Messages, b.Messages = 0, 0
	a.BytesTotal, b.BytesTotal = 0, 0
	a.BarrierRetries, b.BarrierRetries = 0, 0
	if a == b {
		fmt.Println("protocol counters identical to the fault-free run: no duplicated")
		fmt.Println("misses, diffs, barriers, or GC work — the protocol is idempotent")
		fmt.Println("under retry (DESIGN.md §6).")
	} else {
		return fmt.Errorf("protocol counters diverged:\nchaotic: %+v\nclean:   %+v", a, b)
	}
	return nil
}
