// Quickstart: run an application on the DSM, obtain its thread
// correlations with active correlation tracking, and use cut costs to
// compare thread placements.
package main

import (
	"fmt"
	"os"

	"actdsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		threads = 32
		nodes   = 4
	)

	// 1. Build the application (SOR: nearest-neighbour sharing) and a
	//    DSM cluster sized for its shared segment.
	app, err := actdsm.NewApp("SOR", actdsm.AppConfig{Threads: threads, Verify: true})
	if err != nil {
		return err
	}
	sys, err := actdsm.NewSystem(app, nodes)
	if err != nil {
		return err
	}
	defer func() { _ = sys.Close() }()

	// 2. Arm active correlation tracking for iteration 1 (iteration 0
	//    warms the page caches) and run to completion.
	tracker, err := sys.TrackIteration(1)
	if err != nil {
		return err
	}
	if err := sys.Run(); err != nil {
		return err
	}

	// 3. The tracker's bitmaps give the thread-correlation matrix: the
	//    number of shared pages each thread pair touches.
	m := tracker.Matrix()
	fmt.Printf("correlation map (%d threads, darker = more sharing):\n%s\n",
		threads, m.RenderASCII())
	fmt.Printf("tracking faults: %d, sharing degree: %.2f\n\n",
		tracker.TrackingFaults(), tracker.SharingDegree())

	// 4. Cut costs predict communication for candidate placements.
	stretch := actdsm.Stretch(threads, nodes)
	minCost := actdsm.MinCost(m, nodes)
	random := actdsm.RandomBalanced(threads, nodes, actdsm.NewRNG(42))
	fmt.Printf("cut costs (lower = less communication):\n")
	fmt.Printf("  stretch  %5d\n", m.CutCost(stretch))
	fmt.Printf("  min-cost %5d\n", m.CutCost(minCost))
	fmt.Printf("  random   %5d\n", m.CutCost(random))

	// 5. Run statistics from the tracked execution.
	st := sys.Cluster().Stats().Snapshot()
	fmt.Printf("\nrun: %.4f simulated seconds, %d remote misses, %.2f MB traffic\n",
		sys.Elapsed().Seconds(), st.RemoteMisses, float64(st.BytesTotal)/1e6)
	return nil
}
