// Adaptive: the paper's future-work scenario (§7) — an application whose
// sharing pattern drifts over time. A custom app built on the public API
// gives each thread a fixed page window that it updates, plus a *partner*
// whose window it reads; the partner stride grows every few iterations,
// so which thread pairs share changes as the run progresses.
//
// The adaptive policy is the complete loop the paper proposes: active
// correlation tracking runs periodically on a live iteration (the tracker
// is re-armed with Retrack), the drift between consecutive correlation
// matrices is measured (Matrix.Distance), and when the pattern has
// actually changed a min-cost placement is derived and applied with one
// round of migrations. Static stretch placement — which the paper notes
// "is only applicable to applications with static sharing patterns" —
// degrades as the phases drift.
package main

import (
	"fmt"
	"os"

	"actdsm"
	"actdsm/internal/vm"
)

const (
	threads    = 32
	nodes      = 4
	iterations = 60
	phaseLen   = 15 // iterations per sharing phase
	pagesPer   = 8  // pages in each thread's window
	// driftThreshold is the matrix distance above which re-placement is
	// worthwhile.
	driftThreshold = 0.25
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "adaptive:", err)
		os.Exit(1)
	}
}

// partner returns the thread whose window tid reads during iter. The
// stride grows with the phase, so the sharing graph is a ring at phase 0
// and progressively longer-range pairings later.
func partner(tid, iter int) int {
	stride := 1 + 4*(iter/phaseLen)
	return (tid + stride) % threads
}

func makeApp() (actdsm.App, error) {
	var region actdsm.Region
	return actdsm.NewCustomApp("drift", threads, iterations,
		func(l *actdsm.Layout) error {
			var err error
			region, err = l.Alloc("drift.data", threads*pagesPer*actdsm.PageSize)
			return err
		},
		func(tid int) actdsm.Body {
			return func(ctx *actdsm.Ctx) error {
				own := tid * pagesPer * actdsm.PageSize
				for iter := 0; iter < iterations; iter++ {
					// Update every page of the own window so
					// each page genuinely changes (and the
					// partner re-fetches it) every iteration.
					b, err := ctx.SpanRegion(region, own, pagesPer*actdsm.PageSize, vm.Write)
					if err != nil {
						return err
					}
					for pg := 0; pg < pagesPer; pg++ {
						b[pg*actdsm.PageSize+iter%actdsm.PageSize]++
					}
					// Read the partner's window — the drifting
					// cross-thread sharing.
					p := partner(tid, iter) * pagesPer * actdsm.PageSize
					if _, err := ctx.SpanRegion(region, p, pagesPer*actdsm.PageSize, vm.Read); err != nil {
						return err
					}
					ctx.Compute(2048)
					ctx.EndIteration()
				}
				return nil
			}
		})
}

// runOnce executes the workload. With adapt set, it runs the full §7
// loop: track → measure drift → re-place → re-track next phase.
func runOnce(adapt bool) (actdsm.Time, int64, int, error) {
	app, err := makeApp()
	if err != nil {
		return 0, 0, 0, err
	}
	sys, err := actdsm.NewSystem(app, nodes)
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = sys.Close() }()
	eng := sys.Engine()
	migrations := 0

	if adapt {
		tracker, err := sys.TrackIteration(1)
		if err != nil {
			return 0, 0, 0, err
		}
		var lastPlaced *actdsm.Matrix
		err = sys.SetHooks(actdsm.Hooks{OnIteration: func(iter int) {
			if !tracker.Done() {
				return
			}
			// A tracked iteration just completed: decide whether
			// the pattern drifted enough to re-place, then arm the
			// next tracking pass early in the next phase.
			m := tracker.Matrix()
			if lastPlaced == nil || lastPlaced.Distance(m) > driftThreshold {
				target := actdsm.MinCost(m, nodes)
				aligned := actdsm.AlignLabels(target, eng.Placement(), nodes)
				if moved, err := eng.ApplyPlacement(aligned); err == nil && moved > 0 {
					migrations++
				}
				lastPlaced = m
			}
			next := ((iter/phaseLen)+1)*phaseLen + 1
			if next < iterations-1 {
				if err := tracker.Retrack(next); err != nil {
					fmt.Fprintln(os.Stderr, "retrack:", err)
				}
			}
		}})
		if err != nil {
			return 0, 0, 0, err
		}
	}
	if err := sys.Run(); err != nil {
		return 0, 0, 0, err
	}
	return sys.Elapsed(), sys.Cluster().Stats().Snapshot().RemoteMisses, migrations, nil
}

func run() error {
	staticTime, staticMisses, _, err := runOnce(false)
	if err != nil {
		return err
	}
	adaptTime, adaptMisses, migrations, err := runOnce(true)
	if err != nil {
		return err
	}
	fmt.Printf("drifting-sharing workload: %d threads on %d nodes, %d iterations, phase every %d\n\n",
		threads, nodes, iterations, phaseLen)
	fmt.Printf("%-28s  %12s  %12s\n", "policy", "time (ms)", "remote miss")
	fmt.Printf("%-28s  %12.3f  %12d\n", "static stretch", staticTime.Seconds()*1e3, staticMisses)
	fmt.Printf("%-28s  %12.3f  %12d\n",
		fmt.Sprintf("adaptive (%d re-placements)", migrations), adaptTime.Seconds()*1e3, adaptMisses)
	if adaptMisses < staticMisses {
		fmt.Printf("\nperiodic re-tracking + min-cost migration removed %.0f%% of remote\n"+
			"misses (%.2fx faster), tracking overhead included\n",
			100*(1-float64(adaptMisses)/float64(staticMisses)),
			float64(staticTime)/float64(adaptTime))
	}
	return nil
}
