// Serving: run the online KV workload closed-loop on the DSM and apply
// the paper's tracking loop to a request-driven service. A skewed
// tenant workload starts under the default block placement (which
// splits every tenant group across all nodes); active correlation
// tracking runs over the warm-up window; min-cost partitioning derives
// the group structure from the tracked matrix; and one migration round
// applies it before measurement starts — with home migration moving
// page homes after the threads. Placement quality shows up as p99, not
// epoch time: GETs are lock-free, so the tail is remote-miss-dominated.
package main

import (
	"fmt"
	"os"

	"actdsm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serving:", err)
		os.Exit(1)
	}
}

func run() error {
	const nodes = 4

	// 16 clients in 4 tenant groups, each group mostly touching its own
	// key range (zipfian within the range), 10% of requests crossing
	// into the shared region. Window 0 and 1 warm up; 4 windows are
	// measured.
	cfg := actdsm.ServingConfig{
		Clients:           16,
		Keys:              256,
		ValueBytes:        512,
		ReadFraction:      0.9,
		ZipfS:             1.1,
		Groups:            4,
		SharedFraction:    0.1,
		RequestsPerWindow: 64,
		WarmupWindows:     2,
		MeasureWindows:    4,
		Seed:              7,
	}

	for _, variant := range []struct {
		name    string
		track   bool
		cluster actdsm.ClusterConfig
	}{
		{"static", false, actdsm.ClusterConfig{BatchDiffs: true}},
		{"min-cost", true, actdsm.ClusterConfig{BatchDiffs: true}},
		{"min-cost+homemig", true, actdsm.ClusterConfig{BatchDiffs: true, HomeMigration: true}},
	} {
		rep, err := serveVariant(cfg, nodes, variant.track, variant.cluster)
		if err != nil {
			return err
		}
		fmt.Printf("%-17s %8.0f qps   p50 %6.1fµs  p99 %6.1fµs  p999 %6.1fµs   %4d remote misses, %d lock fwd, %d home moves\n",
			variant.name, rep.QPS,
			rep.P50.Seconds()*1e6, rep.P99.Seconds()*1e6, rep.P999.Seconds()*1e6,
			rep.RemoteMisses, rep.LockForwards, rep.HomeMigrations)
	}

	fmt.Println("\nMin-cost placement rediscovers the tenant groups from the tracked")
	fmt.Println("matrix and co-locates them, removing most remote misses; home")
	fmt.Println("migration then moves the migrated threads' hot pages to their new")
	fmt.Println("nodes and forwards lock grants, which is where the p99 win lands.")
	fmt.Println("The same ablation is the 'actbench -only serving' regression gate")
	fmt.Println("behind BENCH_serving.json.")
	return nil
}

// serveVariant runs one closed-loop serving episode. With track set, the
// warm-up window is tracked and a min-cost migration round fires at its
// end, so every measured window runs under the derived placement.
func serveVariant(cfg actdsm.ServingConfig, nodes int, track bool, cc actdsm.ClusterConfig) (*actdsm.ServeReport, error) {
	app, err := actdsm.NewServingApp(cfg)
	if err != nil {
		return nil, err
	}
	sys, err := actdsm.NewSystem(app, nodes,
		actdsm.WithClusterConfig(cc))
	if err != nil {
		return nil, err
	}
	defer func() { _ = sys.Close() }()

	if track {
		tracker, err := sys.TrackIteration(0)
		if err != nil {
			return nil, err
		}
		eng := sys.Engine()
		migrated := false
		if err := sys.SetHooks(actdsm.Hooks{OnIteration: func(iter int) {
			if !tracker.Done() || migrated {
				return
			}
			target := actdsm.MinCost(tracker.Matrix(), nodes)
			aligned := actdsm.AlignLabels(target, eng.Placement(), nodes)
			if _, err := eng.ApplyPlacement(aligned); err != nil {
				fmt.Fprintln(os.Stderr, "migration failed:", err)
				return
			}
			migrated = true
		}}); err != nil {
			return nil, err
		}
	}

	if err := sys.Run(); err != nil {
		return nil, err
	}
	return app.Report()
}
