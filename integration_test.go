package actdsm_test

import (
	"testing"

	"actdsm"
	"actdsm/internal/vm"
)

// TestFullStackSoak drives every major mechanism in one run: an
// application with numerical verification, aggressive diff garbage
// collection, active correlation tracking mid-run, and a min-cost
// migration applied while the application keeps running — the paper's
// complete track → place → migrate loop under GC pressure.
func TestFullStackSoak(t *testing.T) {
	app, err := actdsm.NewApp("Ocean", actdsm.AppConfig{
		Threads: 16, Iterations: 10, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Start from the worst case: random placement; tiny GC threshold so
	// collection rounds interleave with everything else.
	bad := actdsm.RandomBalanced(16, 4, actdsm.NewRNG(11))
	sys, err := actdsm.NewSystem(app, 4,
		actdsm.WithConfig(actdsm.SystemConfig{
			Placement:   bad,
			ShuffleSeed: 5,
			Cluster:     actdsm.ClusterConfig{GCThresholdBytes: 4096},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	tracker, err := sys.TrackIteration(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := sys.Engine()
	migrated := false
	var missesBefore, missesAfter int64
	lastStats := sys.Cluster().Stats().Snapshot()
	err = sys.SetHooks(actdsm.Hooks{OnIteration: func(iter int) {
		cur := sys.Cluster().Stats().Snapshot()
		delta := cur.Sub(lastStats).RemoteMisses
		lastStats = cur
		switch {
		case iter == 0 || iter == 1:
			// warmup / tracked
		case !migrated && tracker.Done():
			missesBefore = delta
			m := tracker.Matrix()
			target := actdsm.MinCost(m, 4)
			aligned := actdsm.AlignLabels(target, eng.Placement(), 4)
			if _, err := eng.ApplyPlacement(aligned); err != nil {
				t.Errorf("migration: %v", err)
			}
			migrated = true
		case iter == 9:
			missesAfter = delta
		}
	}})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !migrated {
		t.Fatal("migration never happened")
	}
	st := sys.Cluster().Stats().Snapshot()
	if st.GCRounds == 0 {
		t.Fatal("GC never triggered despite tiny threshold")
	}
	if tracker.TrackingFaults() == 0 {
		t.Fatal("no tracking faults")
	}
	// The coherence invariant must hold at the end.
	if err := sys.Cluster().CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	// Min-cost placement must not be worse than the random start in
	// steady state (Ocean's nearest-neighbour structure makes it
	// strictly better in practice).
	if missesAfter > missesBefore {
		t.Fatalf("misses after migration %d > before %d", missesAfter, missesBefore)
	}
}

// TestFullStackSoakTCP repeats a shorter soak over real sockets.
func TestFullStackSoakTCP(t *testing.T) {
	app, err := actdsm.NewApp("Spatial", actdsm.AppConfig{
		Threads: 8, Iterations: 4, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 3,
		actdsm.WithClusterConfig(actdsm.ClusterConfig{UseTCP: true, GCThresholdBytes: 8192}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	tracker, err := sys.TrackIteration(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !tracker.Done() {
		t.Fatal("tracking incomplete over TCP")
	}
	if err := sys.Cluster().CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

// TestSystemPlacementController wires the online controller through the
// facade: WithPlacementController alone (no explicit TrackIteration)
// must arm a tracker, trigger evaluations, and surface the decision
// counters in the stats snapshot. The workload pairs thread t with
// t XOR 4, so the default stretch placement splits every pair across
// nodes — obvious headroom the default hysteresis must clear.
func TestSystemPlacementController(t *testing.T) {
	const nthreads, iters = 8, 8
	var region actdsm.Region
	app, err := actdsm.NewCustomApp("pairs", nthreads, iters,
		func(l *actdsm.Layout) error {
			var err error
			region, err = l.Alloc("pairs.data", nthreads*actdsm.PageSize)
			return err
		},
		func(tid int) actdsm.Body {
			return func(ctx *actdsm.Ctx) error {
				for i := 0; i < iters; i++ {
					b, err := ctx.SpanRegion(region, tid*actdsm.PageSize, 8, vm.Write)
					if err != nil {
						return err
					}
					b[0]++
					partner := (tid ^ 4) * actdsm.PageSize
					if _, err := ctx.SpanRegion(region, partner, 8, vm.Read); err != nil {
						return err
					}
					ctx.EndIteration()
				}
				return nil
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	ctrlCfg := actdsm.DefaultControllerConfig()
	ctrlCfg.Period = 1
	sys, err := actdsm.NewSystem(app, 4,
		actdsm.WithClusterConfig(actdsm.ClusterConfig{HomeMigration: true}),
		actdsm.WithPlacementController(ctrlCfg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if ctrl := sys.PlacementController(); ctrl == nil {
		t.Fatal("controller not constructed")
	} else if err := ctrl.Err(); err != nil {
		t.Fatal(err)
	}
	snap := sys.Cluster().Stats().Snapshot()
	if snap.PlacementTriggers == 0 {
		t.Fatal("controller never triggered")
	}
	if snap.PlacementApplied+snap.PlacementSkipped != snap.PlacementTriggers {
		t.Fatalf("decisions don't add up: %d applied + %d skipped != %d triggers",
			snap.PlacementApplied, snap.PlacementSkipped, snap.PlacementTriggers)
	}
	if snap.PlacementApplied == 0 {
		t.Fatal("split pairs should clear default hysteresis at least once")
	}
}
