package actdsm_test

import (
	"testing"

	"actdsm"
)

// TestFullStackSoak drives every major mechanism in one run: an
// application with numerical verification, aggressive diff garbage
// collection, active correlation tracking mid-run, and a min-cost
// migration applied while the application keeps running — the paper's
// complete track → place → migrate loop under GC pressure.
func TestFullStackSoak(t *testing.T) {
	app, err := actdsm.NewApp("Ocean", actdsm.AppConfig{
		Threads: 16, Iterations: 10, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Start from the worst case: random placement; tiny GC threshold so
	// collection rounds interleave with everything else.
	bad := actdsm.RandomBalanced(16, 4, actdsm.NewRNG(11))
	sys, err := actdsm.NewSystem(app, 4,
		actdsm.WithConfig(actdsm.SystemConfig{
			Placement:   bad,
			ShuffleSeed: 5,
			Cluster:     actdsm.ClusterConfig{GCThresholdBytes: 4096},
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()

	tracker, err := sys.TrackIteration(1)
	if err != nil {
		t.Fatal(err)
	}
	eng := sys.Engine()
	migrated := false
	var missesBefore, missesAfter int64
	lastStats := sys.Cluster().Stats().Snapshot()
	err = sys.SetHooks(actdsm.Hooks{OnIteration: func(iter int) {
		cur := sys.Cluster().Stats().Snapshot()
		delta := cur.Sub(lastStats).RemoteMisses
		lastStats = cur
		switch {
		case iter == 0 || iter == 1:
			// warmup / tracked
		case !migrated && tracker.Done():
			missesBefore = delta
			m := tracker.Matrix()
			target := actdsm.MinCost(m, 4)
			aligned := actdsm.AlignLabels(target, eng.Placement(), 4)
			if _, err := eng.ApplyPlacement(aligned); err != nil {
				t.Errorf("migration: %v", err)
			}
			migrated = true
		case iter == 9:
			missesAfter = delta
		}
	}})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !migrated {
		t.Fatal("migration never happened")
	}
	st := sys.Cluster().Stats().Snapshot()
	if st.GCRounds == 0 {
		t.Fatal("GC never triggered despite tiny threshold")
	}
	if tracker.TrackingFaults() == 0 {
		t.Fatal("no tracking faults")
	}
	// The coherence invariant must hold at the end.
	if err := sys.Cluster().CheckCoherence(); err != nil {
		t.Fatal(err)
	}
	// Min-cost placement must not be worse than the random start in
	// steady state (Ocean's nearest-neighbour structure makes it
	// strictly better in practice).
	if missesAfter > missesBefore {
		t.Fatalf("misses after migration %d > before %d", missesAfter, missesBefore)
	}
}

// TestFullStackSoakTCP repeats a shorter soak over real sockets.
func TestFullStackSoakTCP(t *testing.T) {
	app, err := actdsm.NewApp("Spatial", actdsm.AppConfig{
		Threads: 8, Iterations: 4, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := actdsm.NewSystem(app, 3,
		actdsm.WithClusterConfig(actdsm.ClusterConfig{UseTCP: true, GCThresholdBytes: 8192}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sys.Close() }()
	tracker, err := sys.TrackIteration(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !tracker.Done() {
		t.Fatal("tracking incomplete over TCP")
	}
	if err := sys.Cluster().CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}
