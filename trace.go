package actdsm

import (
	"actdsm/internal/memlayout"
	"actdsm/internal/threads"
	"actdsm/internal/trace"
)

// Trace facade: record page-access streams from live runs, analyze them
// offline, and replay them as synthetic workloads (see internal/trace).
type (
	// Trace is a recorded page-access stream.
	Trace = trace.Trace
	// TraceEvent is one page access by one thread.
	TraceEvent = trace.Event
	// Recorder captures a Trace from a live engine.
	Recorder = trace.Recorder
)

// NewRecorder attaches a trace recorder to an engine's cluster; install
// its Hooks before running.
func NewRecorder(e *Engine) *Recorder { return trace.NewRecorder(e) }

// DecodeTrace parses a trace serialized with Trace.Encode.
func DecodeTrace(b []byte) (*Trace, error) { return trace.Decode(b) }

// ReplayTrace replays a captured trace on a fresh cluster with the given
// node count, returning the run's protocol counters and elapsed virtual
// time. The replay is an ordinary Workload run through NewSystem, so it
// accepts every SystemOption — a whole WithClusterConfig (protocol,
// prefetch, batching), transport and chaos (WithTCP,
// WithTransportOptions, WithChaos), or placement — and a recorded
// access stream can be driven against any cluster shape or protocol
// variant. Nodes and Pages come from the arguments and the trace
// itself.
func ReplayTrace(t *Trace, nodes int, opts ...SystemOption) (Snapshot, Time, error) {
	sys, err := NewSystem(&replayWorkload{t: t, body: t.ReplayBody()}, nodes, opts...)
	if err != nil {
		return Snapshot{}, 0, err
	}
	defer func() { _ = sys.Close() }()
	if err := sys.Run(); err != nil {
		return Snapshot{}, 0, err
	}
	return sys.Cluster().Stats().Snapshot(), sys.Elapsed(), nil
}

// replayWorkload adapts a captured trace to the Workload interface so
// replay runs through the same NewSystem/Run path as live apps. It has
// no Iterations method on purpose: a trace's epoch structure is
// whatever the recorded stream contains, so it is the canonical
// non-epoch Workload.
type replayWorkload struct {
	t *Trace
	// body is captured once — ReplayBody builds shared replay cursors,
	// so calling it per thread would give each thread its own copy.
	body func(tid int) threads.Body
}

var _ Workload = (*replayWorkload)(nil)

func (r *replayWorkload) Name() string { return "replay" }
func (r *replayWorkload) Threads() int { return r.t.Threads }

func (r *replayWorkload) Setup(l *memlayout.Layout) error {
	if r.t.Pages > 0 {
		_, err := l.Alloc("replay.pages", r.t.Pages*memlayout.PageSize)
		return err
	}
	return nil
}

func (r *replayWorkload) Body(tid int) threads.Body { return r.body(tid) }
