package actdsm

import (
	"actdsm/internal/dsm"
	"actdsm/internal/threads"
	"actdsm/internal/trace"
)

// Trace facade: record page-access streams from live runs, analyze them
// offline, and replay them as synthetic workloads (see internal/trace).
type (
	// Trace is a recorded page-access stream.
	Trace = trace.Trace
	// TraceEvent is one page access by one thread.
	TraceEvent = trace.Event
	// Recorder captures a Trace from a live engine.
	Recorder = trace.Recorder
)

// NewRecorder attaches a trace recorder to an engine's cluster; install
// its Hooks before running.
func NewRecorder(e *Engine) *Recorder { return trace.NewRecorder(e) }

// DecodeTrace parses a trace serialized with Trace.Encode.
func DecodeTrace(b []byte) (*Trace, error) { return trace.Decode(b) }

// ReplayTrace replays a captured trace on a fresh cluster with the given
// node count, returning the run's protocol counters and elapsed virtual
// time. The replayed system accepts the same options as NewSystem —
// protocol (WithProtocol), transport and chaos (WithTCP,
// WithTransportOptions, WithChaos), prefetch and batching
// (WithPrefetchBudget, WithDiffBatching), placement, or a whole
// WithClusterConfig — so a recorded access stream can be driven against
// any cluster shape or protocol variant. Nodes and Pages come from the
// arguments and the trace itself.
func ReplayTrace(t *Trace, nodes int, opts ...SystemOption) (Snapshot, Time, error) {
	var cfg SystemConfig
	for _, o := range opts {
		o(&cfg)
	}
	ccfg := cfg.Cluster
	ccfg.Nodes = nodes
	ccfg.Pages = t.Pages
	cl, err := dsm.New(ccfg)
	if err != nil {
		return Snapshot{}, 0, err
	}
	defer func() { _ = cl.Close() }()
	eng, err := threads.NewEngine(cl, threads.Config{
		Threads:          t.Threads,
		Placement:        cfg.Placement,
		SchedulerEnabled: true,
		ShuffleSeed:      cfg.ShuffleSeed,
		NodeSpeeds:       cfg.NodeSpeeds,
	})
	if err != nil {
		return Snapshot{}, 0, err
	}
	if err := eng.Run(t.ReplayBody()); err != nil {
		return Snapshot{}, 0, err
	}
	return cl.Stats().Snapshot(), eng.Elapsed(), nil
}
