package actdsm_test

import (
	"fmt"

	"actdsm"
)

// Cut costs compare candidate thread placements: the aggregate
// correlation of thread pairs split across nodes.
func ExampleMatrix_CutCost() {
	// A ring of four threads, each sharing 10 pages with its successor.
	m := actdsm.NewMatrix(4)
	for i := 0; i < 4; i++ {
		m.Set(i, (i+1)%4, 10)
	}
	contiguous := []int{0, 0, 1, 1} // neighbours together
	alternating := []int{0, 1, 0, 1}
	fmt.Println(m.CutCost(contiguous), m.CutCost(alternating))
	// Output: 20 40
}

// Stretch divides threads into contiguous equal blocks — the paper's
// simplest placement heuristic.
func ExampleStretch() {
	fmt.Println(actdsm.Stretch(8, 4))
	fmt.Println(actdsm.Stretch(7, 3))
	// Output:
	// [0 0 1 1 2 2 3 3]
	// [0 0 0 1 1 2 2]
}

// MinCost groups threads by affinity; on block-structured sharing it
// recovers the blocks exactly.
func ExampleMinCost() {
	// Two heavy 2-thread blocks.
	m := actdsm.NewMatrix(4)
	m.Set(0, 1, 100)
	m.Set(2, 3, 100)
	m.Set(1, 2, 1) // light background
	assign := actdsm.MinCost(m, 2)
	fmt.Println(assign[0] == assign[1], assign[2] == assign[3], assign[0] != assign[2])
	fmt.Println(m.CutCost(assign))
	// Output:
	// true true true
	// 1
}

// CapacitiesForSpeeds sizes per-node thread counts for heterogeneous
// clusters (paper §2's motivation for unequal thread counts).
func ExampleCapacitiesForSpeeds() {
	caps, _ := actdsm.CapacitiesForSpeeds(16, []float64{3, 1})
	fmt.Println(caps)
	// Output: [12 4]
}

// Plan computes the single round of migrations between two placements,
// relabeling nodes first so equivalent placements need no moves at all.
func ExamplePlan() {
	current := []int{0, 0, 1, 1}
	relabeled := []int{1, 1, 0, 0} // same grouping, different labels
	fmt.Println(len(actdsm.Plan(current, relabeled, 2)))
	different := []int{0, 1, 0, 1}
	fmt.Println(len(actdsm.Plan(current, different, 2)))
	// Output:
	// 0
	// 2
}
